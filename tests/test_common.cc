/**
 * @file
 * Unit tests for src/common: RNG determinism and distributions,
 * log-bucketed histogram semantics, running statistics and formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace rppm {
namespace {

// ---------------------------------------------------------------- Rng ---

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextBoundedStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(12);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, GeometricMeanApproximatelyCorrect)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(8.0));
    EXPECT_NEAR(sum / n, 8.0, 0.25);
}

TEST(Rng, GeometricNeverZero)
{
    Rng rng(14);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.nextGeometric(1.5), 1u);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic)
{
    Rng parent1(5), parent2(5);
    Rng childa = parent1.fork(1);
    Rng childb = parent2.fork(1);
    Rng childc = parent2.fork(2); // different salt after same history?
    // Same parent state + same salt => identical child streams.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(childa.next(), childb.next());
    // Different salt => different stream.
    Rng parent3(5);
    Rng childd = parent3.fork(99);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += childd.next() == childc.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRange)
{
    Rng rng(21);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextUniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

// -------------------------------------------------------- LogHistogram ---

TEST(LogHistogram, EmptyHistogram)
{
    LogHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.survival(10), 0.0);
    EXPECT_DOUBLE_EQ(h.meanFinite(), 0.0);
}

TEST(LogHistogram, SmallValuesExactBuckets)
{
    // Values below the linear cutoff get exact buckets.
    for (uint64_t v = 0; v < 16; ++v)
        EXPECT_EQ(LogHistogram::bucketMid(LogHistogram::bucketIndex(v)), v);
}

TEST(LogHistogram, BucketBoundsConsistent)
{
    for (size_t i = 0; i + 1 < LogHistogram::numBuckets(); ++i) {
        EXPECT_EQ(LogHistogram::bucketHi(i) + 1, LogHistogram::bucketLo(i + 1))
            << "bucket " << i;
        EXPECT_LE(LogHistogram::bucketLo(i), LogHistogram::bucketMid(i));
        EXPECT_LE(LogHistogram::bucketMid(i), LogHistogram::bucketHi(i));
    }
}

TEST(LogHistogram, BucketIndexMatchesBounds)
{
    for (uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull,
                       123456ull, 999999999ull}) {
        const size_t idx = LogHistogram::bucketIndex(v);
        EXPECT_GE(v, LogHistogram::bucketLo(idx)) << v;
        EXPECT_LE(v, LogHistogram::bucketHi(idx)) << v;
    }
}

TEST(LogHistogram, TotalCounts)
{
    LogHistogram h;
    h.add(3, 5);
    h.add(100, 2);
    h.add(LogHistogram::kInfinity, 3);
    EXPECT_EQ(h.totalFinite(), 7u);
    EXPECT_EQ(h.totalInfinite(), 3u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(LogHistogram, SurvivalBasic)
{
    LogHistogram h;
    h.add(2, 50);
    h.add(1000, 50);
    // Everything above 2 but below 1000's bucket: survival(10) ~ 0.5.
    EXPECT_NEAR(h.survival(10), 0.5, 0.02);
    EXPECT_NEAR(h.survival(0), 1.0, 0.02);
    EXPECT_NEAR(h.survival(1u << 20), 0.0, 0.02);
}

TEST(LogHistogram, SurvivalCountsInfiniteTail)
{
    LogHistogram h;
    h.add(2, 50);
    h.add(LogHistogram::kInfinity, 50);
    EXPECT_NEAR(h.survival(100), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(h.survival(LogHistogram::kInfinity), 0.0);
}

TEST(LogHistogram, SurvivalMonotoneNonIncreasing)
{
    LogHistogram h;
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.nextBounded(1 << 20));
    double prev = 1.1;
    for (uint64_t v = 0; v < (1u << 20); v += 1337) {
        const double s = h.survival(v);
        EXPECT_LE(s, prev + 1e-12);
        prev = s;
    }
}

TEST(LogHistogram, MeanOfExactValues)
{
    LogHistogram h;
    h.add(4, 10);
    h.add(8, 10);
    EXPECT_DOUBLE_EQ(h.meanFinite(), 6.0);
}

TEST(LogHistogram, MergeAddsCounts)
{
    LogHistogram a, b;
    a.add(5, 3);
    b.add(5, 4);
    b.add(LogHistogram::kInfinity, 2);
    a.merge(b);
    EXPECT_EQ(a.totalFinite(), 7u);
    EXPECT_EQ(a.totalInfinite(), 2u);
}

TEST(LogHistogram, MergeIntoEmpty)
{
    LogHistogram a, b;
    b.add(123, 7);
    a.merge(b);
    EXPECT_EQ(a.totalFinite(), 7u);
}

TEST(LogHistogram, QuantileBasic)
{
    LogHistogram h;
    h.add(1, 25);
    h.add(2, 25);
    h.add(3, 25);
    h.add(4, 25);
    EXPECT_EQ(h.quantile(0.2), 1u);
    EXPECT_EQ(h.quantile(0.95), 4u);
}

TEST(LogHistogram, QuantileInfiniteTail)
{
    LogHistogram h;
    h.add(1, 10);
    h.add(LogHistogram::kInfinity, 90);
    EXPECT_EQ(h.quantile(0.99), LogHistogram::kInfinity);
}

TEST(LogHistogram, ForEachVisitsAllMass)
{
    LogHistogram h;
    h.add(7, 3);
    h.add(70000, 4);
    h.add(LogHistogram::kInfinity, 5);
    uint64_t mass = 0;
    h.forEach([&](uint64_t, uint64_t count) { mass += count; });
    EXPECT_EQ(mass, 12u);
}

// -------------------------------------------------------- RunningStats ---

TEST(RunningStats, Basic)
{
    RunningStats s;
    s.add(1.0);
    s.add(3.0);
    s.add(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Stats, RelativeError)
{
    EXPECT_DOUBLE_EQ(relativeError(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(90.0, 100.0), -0.1);
    EXPECT_DOUBLE_EQ(absRelativeError(90.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(relativeError(5.0, 0.0), 1.0);
}

TEST(Stats, MeanAndMax)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(maxOf({1.0, 5.0, 3.0}), 5.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(maxOf({}), 0.0);
}

// -------------------------------------------------------- TablePrinter ---

TEST(Table, RendersAlignedColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows)
{
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(fmt(1.2345, 2), "1.23");
    EXPECT_EQ(fmtPct(0.112, 1), "11.2%");
    EXPECT_EQ(fmtPct(0.0, 2), "0.00%");
}

TEST(Table, BarChartRenders)
{
    AsciiBarChart chart({"MAIN", "CRIT", "RPPM"}, 20);
    chart.addGroup("bench1", {0.45, 0.28, 0.11});
    const std::string out = chart.render();
    EXPECT_NE(out.find("bench1"), std::string::npos);
    EXPECT_NE(out.find("RPPM"), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

} // namespace
} // namespace rppm

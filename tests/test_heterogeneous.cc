/**
 * @file
 * Tests for the heterogeneous-multicore configuration API: per-core
 * CoreConfig tables, thread-to-core mappings, DVFS scenarios, and the
 * end-to-end guarantee that a heterogeneous config whose cores are all
 * identical reproduces the uniform predictions and simulations
 * bit-identically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "arch/config.hh"
#include "profile/profiler.hh"
#include "rppm/predictor.hh"
#include "sim/simulator.hh"
#include "study/study.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

/** Shrink a suite spec to test-friendly size while keeping structure. */
WorkloadSpec
shrink(WorkloadSpec spec, uint64_t divisor = 20)
{
    spec.opsPerEpoch = std::max<uint64_t>(500, spec.opsPerEpoch / divisor);
    spec.initOps = std::max<uint64_t>(200, spec.initOps / divisor);
    spec.finalOps = std::max<uint64_t>(100, spec.finalOps / divisor);
    spec.numEpochs = std::min<uint32_t>(spec.numEpochs, 12);
    spec.queueItems = std::min<uint32_t>(spec.queueItems, 30);
    spec.csPerEpoch = std::min<uint32_t>(spec.csPerEpoch, 12);
    return spec;
}

/** Explicit identity mapping for @p threads threads on @p cores cores —
 *  semantically equal to the default empty mapping, but exercises the
 *  non-identity code paths. */
ThreadMapping
explicitIdentity(uint32_t threads, uint32_t cores)
{
    std::vector<uint32_t> map(threads);
    for (uint32_t t = 0; t < threads; ++t)
        map[t] = t % cores;
    return ThreadMapping(std::move(map));
}

// ------------------------------------------------ uniform equivalence ---

/**
 * The acceptance bar of the redesign: rebuilding the uniform Base
 * machine as an explicitly heterogeneous config (hand-assembled core
 * table, explicit thread mapping) must reproduce the uniform prediction
 * AND simulation bit-identically, on every suite kernel.
 */
TEST(HeterogeneousEquivalence, AllIdenticalCoresMatchUniformEverywhere)
{
    const MulticoreConfig uniform = baseConfig();
    for (const SuiteEntry &entry : fullSuite()) {
        const WorkloadSpec spec = shrink(entry.spec);
        const WorkloadTrace trace = generateWorkload(spec);
        const WorkloadProfile prof = profileWorkload(trace);

        MulticoreConfig het = uniform;
        het.cores.assign(uniform.numCores(), uniform.core());
        het.mapping =
            explicitIdentity(spec.numThreads(), uniform.numCores());
        ASSERT_FALSE(het.mapping.isIdentity());
        het.validate();

        const RppmPrediction up = predict(prof, uniform);
        const RppmPrediction hp = predict(prof, het);
        EXPECT_EQ(up.totalCycles, hp.totalCycles) << spec.name;
        EXPECT_EQ(up.totalSeconds, hp.totalSeconds) << spec.name;
        ASSERT_EQ(up.threads.size(), hp.threads.size());
        for (size_t t = 0; t < up.threads.size(); ++t) {
            EXPECT_EQ(up.threads[t].activeCycles,
                      hp.threads[t].activeCycles)
                << spec.name << " t" << t;
            EXPECT_EQ(up.threadIdle[t], hp.threadIdle[t])
                << spec.name << " t" << t;
            EXPECT_EQ(up.threadSeconds[t], hp.threadSeconds[t])
                << spec.name << " t" << t;
        }

        const SimResult us = simulate(trace, uniform);
        const SimResult hs = simulate(trace, het);
        EXPECT_EQ(us.totalCycles, hs.totalCycles) << spec.name;
        EXPECT_EQ(us.totalSeconds, hs.totalSeconds) << spec.name;
        ASSERT_EQ(us.threads.size(), hs.threads.size());
        for (size_t t = 0; t < us.threads.size(); ++t) {
            EXPECT_EQ(us.threads[t].finishTime, hs.threads[t].finishTime)
                << spec.name << " t" << t;
            EXPECT_EQ(us.threads[t].activeCycles,
                      hs.threads[t].activeCycles)
                << spec.name << " t" << t;
        }
    }
}

TEST(HeterogeneousEquivalence, MappingPermutationInvariantOnSymmetricCores)
{
    const WorkloadSpec spec = shrink(parsecSuite()[0].spec); // blackscholes
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);

    const MulticoreConfig base = baseConfig();
    MulticoreConfig rotated = base;
    // Rotate the placement: on interchangeable cores this must not
    // change anything, bit for bit.
    std::vector<uint32_t> map(spec.numThreads());
    for (uint32_t t = 0; t < map.size(); ++t)
        map[t] = (t + 1) % base.numCores();
    rotated.mapping = ThreadMapping(std::move(map));
    rotated.validate();

    EXPECT_EQ(predict(prof, base).totalCycles,
              predict(prof, rotated).totalCycles);
    EXPECT_EQ(simulate(trace, base).totalCycles,
              simulate(trace, rotated).totalCycles);
}

// ------------------------------------------------------- validation ---

TEST(HeterogeneousConfig, ValidateRejectsEmptyCoreTable)
{
    MulticoreConfig cfg = baseConfig();
    cfg.cores.clear();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(HeterogeneousConfig, ValidateRejectsOutOfRangeMapping)
{
    MulticoreConfig cfg = baseConfig();
    cfg.mapping = ThreadMapping({0, 1, 4, 2}); // core 4 does not exist
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.mapping = ThreadMapping({0, 1, 3, 2});
    EXPECT_NO_THROW(cfg.validate());
}

TEST(HeterogeneousConfig, ValidateChecksEveryCore)
{
    MulticoreConfig cfg = baseConfig();
    cfg.core(2).robSize = 2; // smaller than core 2's dispatch width
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(HeterogeneousConfig, ValidateRejectsMixedLineSizes)
{
    MulticoreConfig cfg = baseConfig();
    cfg.core(1).l1d.lineBytes = 128;
    cfg.core(1).l1i.lineBytes = 128;
    cfg.core(1).l2.lineBytes = 128; // consistent core, mismatched chip
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(HeterogeneousConfig, MappingWrapsBeyondTableLength)
{
    const ThreadMapping mapping({2, 3});
    EXPECT_EQ(mapping.coreOf(0, 4), 2u);
    EXPECT_EQ(mapping.coreOf(1, 4), 3u);
    EXPECT_EQ(mapping.coreOf(2, 4), 2u); // wraps modulo table size
    const ThreadMapping identity;
    EXPECT_EQ(identity.coreOf(5, 4), 1u); // identity wraps modulo cores
}

// ------------------------------------------------- config factories ---

TEST(HeterogeneousConfig, BigLittleShape)
{
    const MulticoreConfig cfg = bigLittleConfig(2, 2);
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.numCores(), 4u);
    EXPECT_FALSE(cfg.homogeneous());
    EXPECT_GT(cfg.core(0).dispatchWidth, cfg.core(2).dispatchWidth);
    EXPECT_GT(cfg.core(0).frequencyGHz, cfg.core(3).frequencyGHz);
    // Little cores are a separate, slower clock domain.
    EXPECT_DOUBLE_EQ(cfg.timeScale(0), 1.0);
    EXPECT_DOUBLE_EQ(cfg.timeScale(2), 2.0); // 2.5 GHz / 1.25 GHz
}

TEST(HeterogeneousConfig, DvfsPreservesWallClockDramLatency)
{
    const MulticoreConfig base = baseConfig();
    const MulticoreConfig half =
        dvfsConfig(base, {1.25, 1.25, 1.25, 1.25}, "half");
    EXPECT_NO_THROW(half.validate());
    // 80 ns at 2.5 GHz = 200 cycles; at 1.25 GHz = 100 cycles.
    EXPECT_EQ(half.core(0).memLatency, 100u);
    EXPECT_NEAR(half.cyclesToNs(half.core(0).memLatency, 0),
                base.cyclesToNs(base.core(0).memLatency, 0), 0.5);
}

TEST(HeterogeneousConfig, HeterogeneousConfigFamilyIsValidAndNamed)
{
    std::set<std::string> names;
    for (const MulticoreConfig &cfg : heterogeneousConfigs()) {
        EXPECT_NO_THROW(cfg.validate());
        EXPECT_TRUE(names.insert(cfg.name).second) << cfg.name;
    }
    EXPECT_GE(names.size(), 4u);
}

TEST(HeterogeneousConfig, MappingSweepDeduplicatesSymmetricPlacements)
{
    // All four cores interchangeable: a single design point survives.
    EXPECT_EQ(mappingSweep(baseConfig(), 4).size(), 1u);

    // 2 big + 2 little, 4 threads: the distinct placements are "which
    // threads ride a big core" = C(4,2) = 6.
    const auto sweep = mappingSweep(bigLittleConfig(2, 2), 4);
    EXPECT_EQ(sweep.size(), 6u);
    std::set<std::string> names;
    for (const MulticoreConfig &cfg : sweep) {
        EXPECT_NO_THROW(cfg.validate());
        EXPECT_TRUE(names.insert(cfg.name).second) << cfg.name;
    }
}

// ------------------------------------------- heterogeneous behaviour ---

TEST(HeterogeneousPrediction, LittleCoresAreSlower)
{
    WorkloadSpec spec = shrink(rodiniaSuite()[0].spec); // backprop
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);

    const MulticoreConfig bl = bigLittleConfig(2, 2);
    const uint32_t threads = spec.numThreads();

    // Everybody on big cores vs. everybody on little cores.
    MulticoreConfig allBig = bl;
    allBig.name = "all-big";
    allBig.mapping = ThreadMapping(std::vector<uint32_t>(threads, 0));
    MulticoreConfig allLittle = bl;
    allLittle.name = "all-little";
    allLittle.mapping = ThreadMapping(std::vector<uint32_t>(threads, 2));

    const RppmPrediction pb = predict(prof, allBig);
    const RppmPrediction pl = predict(prof, allLittle);
    EXPECT_GT(pl.totalSeconds, pb.totalSeconds * 1.3);

    const SimResult sb = simulate(trace, allBig);
    const SimResult sl = simulate(trace, allLittle);
    EXPECT_GT(sl.totalSeconds, sb.totalSeconds * 1.3);

    // The model and the golden reference agree on the placement
    // ordering, which is what placement DSE relies on.
    EXPECT_EQ(pl.totalSeconds > pb.totalSeconds,
              sl.totalSeconds > sb.totalSeconds);
}

TEST(HeterogeneousPrediction, DvfsSlowdownShowsUpInSeconds)
{
    WorkloadSpec spec = shrink(rodiniaSuite()[4].spec); // hotspot
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);

    const MulticoreConfig base = baseConfig();
    const MulticoreConfig half =
        dvfsConfig(base, {1.25, 1.25, 1.25, 1.25}, "half-clock");
    const double baseSec = predict(prof, base).totalSeconds;
    const double halfSec = predict(prof, half).totalSeconds;
    // Compute phases scale ~2x while DRAM time is constant in
    // wall-clock (dvfsConfig preserves it), so the slowdown of this
    // partly memory-bound kernel lands strictly between 1x and 2.1x.
    EXPECT_GT(halfSec, baseSec * 1.1);
    EXPECT_LT(halfSec, baseSec * 2.1);
}

TEST(HeterogeneousStudy, StudyAcceptsHeterogeneousConfigsTransparently)
{
    const WorkloadSpec spec = shrink(parsecSuite()[0].spec, 40);
    Study study;
    study.addWorkload(spec)
        .addConfig(bigLittleConfig(2, 2))
        .addConfig(baseConfig())
        .addEvaluator("rppm")
        .addEvaluator("sim");
    const StudyResult grid = study.run();
    for (const Evaluation &cell : grid.cells()) {
        EXPECT_GT(cell.cycles, 0.0);
        // Heterogeneity-aware backends report per-thread seconds on the
        // mapped cores.
        EXPECT_EQ(cell.threadSeconds.size(), spec.numThreads());
        for (double s : cell.threadSeconds)
            EXPECT_GE(s, 0.0);
    }
    EXPECT_GT(grid.errorVs(spec.name, "bigLITTLE-2+2", "rppm", "sim"),
              -1.0); // defined (non-throwing) on the het point
}

} // namespace
} // namespace rppm

/**
 * @file
 * Integration and property tests across the full pipeline:
 * generate -> simulate -> profile -> predict.
 *
 * These tests pin the paper's headline behaviours: RPPM tracks the
 * simulator within a modest error, outperforms the MAIN/CRIT baselines on
 * workloads where they break, the Table-I error-accumulation effect holds,
 * and one profile predicts a whole design space.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "common/rng.hh"
#include "common/stats.hh"
#include "profile/profiler.hh"
#include "rppm/baselines.hh"
#include "rppm/predictor.hh"
#include "sim/bottlegraph.hh"
#include "sim/simulator.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

/** Shrink a suite spec to test-friendly size while keeping structure. */
WorkloadSpec
shrink(WorkloadSpec spec, uint64_t divisor = 20)
{
    spec.opsPerEpoch = std::max<uint64_t>(500, spec.opsPerEpoch / divisor);
    spec.initOps = std::max<uint64_t>(200, spec.initOps / divisor);
    spec.finalOps = std::max<uint64_t>(100, spec.finalOps / divisor);
    spec.numEpochs = std::min<uint32_t>(spec.numEpochs, 20);
    spec.queueItems = std::min<uint32_t>(spec.queueItems, 40);
    spec.csPerEpoch = std::min<uint32_t>(spec.csPerEpoch, 20);
    return spec;
}

struct PipelineResult
{
    SimResult sim;
    RppmPrediction rppm;
    double mainPred = 0.0;
    double critPred = 0.0;
};

PipelineResult
runPipeline(const WorkloadSpec &spec, const MulticoreConfig &cfg)
{
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    PipelineResult result;
    result.sim = simulate(trace, cfg);
    result.rppm = predict(prof, cfg);
    result.mainPred = predictMain(prof, cfg);
    result.critPred = predictCrit(prof, cfg);
    return result;
}

TEST(Integration, BalancedBarrierWorkloadAccuracy)
{
    const PipelineResult r =
        runPipeline(shrink(rodiniaSuite()[4].spec), baseConfig()); // hotspot
    const double err =
        absRelativeError(r.rppm.totalCycles, r.sim.totalCycles);
    EXPECT_LT(err, 0.30) << "RPPM error too large";
}

TEST(Integration, RppmBeatsMainOnPoolWorkloads)
{
    // Blackscholes-style: main idle, 4 workers. MAIN must grossly
    // underestimate; RPPM must not.
    const auto entry = findBenchmark("Blackscholes");
    ASSERT_TRUE(entry.has_value());
    const PipelineResult r = runPipeline(shrink(entry->spec), baseConfig());
    const double err_rppm =
        absRelativeError(r.rppm.totalCycles, r.sim.totalCycles);
    const double err_main =
        absRelativeError(r.mainPred, r.sim.totalCycles);
    EXPECT_GT(err_main, 0.5); // MAIN misses nearly all the work
    EXPECT_LT(err_rppm, err_main);
}

TEST(Integration, RppmBeatsCritOnImbalancedBarriers)
{
    // Strong per-epoch jitter: the per-epoch critical thread changes, so
    // CRIT (one critical thread for the whole run) underestimates. The
    // kernel is L1-resident compute so active-time model bias does not
    // mask the synchronization effect under test.
    WorkloadSpec spec = barrierLoopSpec(4, 30, 2500);
    spec.epochJitter = 1.4;
    spec.kernel.privateBytes = 8 << 10;
    spec.kernel.hotLines = 16;
    spec.kernel.reuseFrac = 0.8;
    spec.kernel.randomFrac = 0.0;
    spec.kernel.fracLoad = 0.1;
    spec.kernel.fracStore = 0.05;
    spec.kernel.codeFootprint = 512;
    spec.kernel.branchEntropy = 0.005;
    spec.kernel.chainFrac = 0.2;
    const PipelineResult r = runPipeline(spec, baseConfig());
    const double err_rppm =
        absRelativeError(r.rppm.totalCycles, r.sim.totalCycles);
    const double err_crit =
        absRelativeError(r.critPred, r.sim.totalCycles);
    EXPECT_LT(err_rppm, err_crit);
}

TEST(Integration, ProfileOncePredictMany)
{
    // One profile drives predictions across the full Table-IV space and
    // they remain sane versus per-config simulation.
    WorkloadSpec spec = shrink(rodiniaSuite()[0].spec, 40); // backprop
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    for (const MulticoreConfig &cfg : tableIvConfigs()) {
        const SimResult sim = simulate(trace, cfg);
        const RppmPrediction pred = predict(prof, cfg);
        const double err =
            absRelativeError(pred.totalCycles, sim.totalCycles);
        EXPECT_LT(err, 0.5) << cfg.name;
    }
}

TEST(Integration, PredictionTracksArchitectureTrend)
{
    // Compute-bound kernel: per-cycle behaviour improves with width, so
    // predicted and simulated cycle counts must rank the extreme designs
    // the same way.
    WorkloadSpec spec = barrierLoopSpec(4, 6, 5000);
    spec.kernel.chainFrac = 0.05;
    spec.kernel.depMean = 40.0;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    const auto configs = tableIvConfigs();
    const SimResult sim_small = simulate(trace, configs.front());
    const SimResult sim_big = simulate(trace, configs.back());
    const RppmPrediction pred_small = predict(prof, configs.front());
    const RppmPrediction pred_big = predict(prof, configs.back());
    // High-ILP code prefers the wide core in cycles.
    EXPECT_EQ(sim_big.totalCycles < sim_small.totalCycles,
              pred_big.totalCycles < pred_small.totalCycles);
}

TEST(Integration, BottlegraphShapeMatchesSim)
{
    // Freqmine-style: main is the bottleneck. RPPM's bottlegraph should
    // agree with the simulated one about which thread dominates.
    const auto entry = findBenchmark("Freqmine");
    ASSERT_TRUE(entry.has_value());
    const WorkloadSpec spec = shrink(entry->spec);
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    const SimResult sim = simulate(trace, baseConfig());
    const RppmPrediction pred = predict(prof, baseConfig());
    const Bottlegraph sim_graph = buildBottlegraph(sim);
    const Bottlegraph pred_graph = pred.bottlegraph();
    EXPECT_GT(bottlegraphSimilarity(sim_graph, pred_graph), 0.8);
    // Main (thread 0) is the tallest box in both.
    double sim_max = 0.0, pred_max = 0.0;
    uint32_t sim_argmax = 0, pred_argmax = 0;
    for (uint32_t t = 0; t < trace.numThreads(); ++t) {
        if (sim_graph.normalizedHeight(t) > sim_max) {
            sim_max = sim_graph.normalizedHeight(t);
            sim_argmax = t;
        }
        if (pred_graph.normalizedHeight(t) > pred_max) {
            pred_max = pred_graph.normalizedHeight(t);
            pred_argmax = t;
        }
    }
    EXPECT_EQ(sim_argmax, pred_argmax);
}

TEST(Integration, CoherenceHeavyWorkloadStillPredicted)
{
    // Canneal-style shared-write traffic exercises invalidation paths in
    // both simulator and profiler.
    const auto entry = findBenchmark("Canneal");
    ASSERT_TRUE(entry.has_value());
    const PipelineResult r = runPipeline(shrink(entry->spec), baseConfig());
    EXPECT_GT(r.sim.mem[1].coherenceMisses, 0u);
    const double err =
        absRelativeError(r.rppm.totalCycles, r.sim.totalCycles);
    EXPECT_LT(err, 0.5);
}

TEST(Integration, CondVarBarrierModeledAsBarrier)
{
    // Facesim-style condvar barriers: RPPM must handle them without
    // deadlock and with sane accuracy.
    const auto entry = findBenchmark("Facesim");
    ASSERT_TRUE(entry.has_value());
    const PipelineResult r = runPipeline(shrink(entry->spec), baseConfig());
    const double err =
        absRelativeError(r.rppm.totalCycles, r.sim.totalCycles);
    EXPECT_LT(err, 0.4);
}

// ------------------------------------------- full-suite accuracy sweep ---

/**
 * Property: on every benchmark of the suite (shrunk for test speed) and
 * on both extreme Table-IV designs, RPPM stays within a generous error
 * bound and always beats at least one naive baseline. This is the
 * regression net for the Fig. 4 result.
 */
class SuiteAccuracyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SuiteAccuracyTest, RppmWithinBoundsEverywhere)
{
    const auto suite = fullSuite();
    const SuiteEntry entry = suite[static_cast<size_t>(GetParam())];
    const WorkloadSpec spec = shrink(entry.spec, 30);
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile profile = profileWorkload(trace);

    const auto configs = tableIvConfigs();
    for (const MulticoreConfig *cfg : {&configs.front(), &configs.back()}) {
        const SimResult sim = simulate(trace, *cfg);
        const RppmPrediction pred = predict(profile, *cfg);
        const double err =
            absRelativeError(pred.totalCycles, sim.totalCycles);
        // Generous bound: shrunk workloads are cold-start-heavy, the
        // worst case for the additive model (paper max is 23% at full
        // scale).
        EXPECT_LT(err, 0.40) << entry.spec.name << " on " << cfg->name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteAccuracyTest,
                         ::testing::Range(0, 26));

// --------------------------------------------- Table I (error build-up) ---

/**
 * Monte-Carlo reproduction of the paper's Table I: per-thread inter-
 * barrier times are predicted with a uniform random error in [-b, +b];
 * the accumulated overall error approaches b*(n-1)/(n+1) for n threads.
 */
double
accumulatedError(uint32_t threads, double bound, uint32_t barriers,
                 uint64_t seed)
{
    Rng rng(seed);
    double actual_total = 0.0, predicted_total = 0.0;
    for (uint32_t b = 0; b < barriers; ++b) {
        double predicted_max = 0.0;
        for (uint32_t t = 0; t < threads; ++t) {
            const double err = rng.nextUniform(-bound, bound);
            predicted_max = std::max(predicted_max, 1.0 + err);
        }
        actual_total += 1.0;
        predicted_total += predicted_max;
    }
    return predicted_total / actual_total - 1.0;
}

class TableOneTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>>
{
};

TEST_P(TableOneTest, MatchesClosedForm)
{
    const auto [threads, bound] = GetParam();
    const double measured =
        accumulatedError(threads, bound, 20000, threads * 31 + 7);
    const double expected = threads == 1 ?
        0.0 : bound * (threads - 1) / (threads + 1);
    EXPECT_NEAR(measured, expected, 0.004)
        << threads << " threads, bound " << bound;
}

INSTANTIATE_TEST_SUITE_P(
    ThreadErrorSweep, TableOneTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u, 16u),
                       ::testing::Values(0.01, 0.05, 0.10)));

TEST(TableOne, ErrorGrowsWithThreadCount)
{
    const double e2 = accumulatedError(2, 0.05, 20000, 11);
    const double e8 = accumulatedError(8, 0.05, 20000, 12);
    const double e16 = accumulatedError(16, 0.05, 20000, 13);
    EXPECT_LT(e2, e8);
    EXPECT_LT(e8, e16);
}

// ----------------------------------------------------- speed sanity ---

TEST(Integration, PredictionMuchFasterThanSimulation)
{
    // The "R" in RPPM: model evaluation must beat simulation wall-clock.
    WorkloadSpec spec = shrink(rodiniaSuite()[5].spec, 10); // kmeans
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);

    const auto t0 = std::chrono::steady_clock::now();
    const SimResult sim = simulate(trace, baseConfig());
    const auto t1 = std::chrono::steady_clock::now();
    const RppmPrediction pred = predict(prof, baseConfig());
    const auto t2 = std::chrono::steady_clock::now();

    const double sim_us = std::chrono::duration<double, std::micro>(
        t1 - t0).count();
    const double pred_us = std::chrono::duration<double, std::micro>(
        t2 - t1).count();
    EXPECT_GT(sim.totalCycles, 0.0);
    EXPECT_GT(pred.totalCycles, 0.0);
    EXPECT_LT(pred_us, sim_us) << "prediction slower than simulation";
}

} // namespace
} // namespace rppm

/**
 * @file
 * Unit tests for src/rppm/memory_model and the interplay between
 * profiled reuse distances and predicted cache behaviour, plus CPI-stack
 * consistency properties of predictEpoch.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "profile/profiler.hh"
#include "rppm/memory_model.hh"
#include "rppm/thread_model.hh"
#include "trace/trace_builder.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

/** An epoch whose data accesses all have reuse distance @p rd. */
EpochProfile
uniformRdEpoch(uint64_t rd, uint64_t accesses = 10000)
{
    EpochProfile epoch;
    epoch.numOps = accesses * 4;
    epoch.numLoads = accesses;
    epoch.localRd.add(rd, accesses);
    epoch.globalRd.add(rd, accesses);
    epoch.loadLocalRd.add(rd, accesses);
    epoch.loadGlobalRd.add(rd, accesses);
    epoch.instrRd.add(2, epoch.numOps);
    return epoch;
}

TEST(MemoryModel, ShortReuseHitsL1)
{
    const EpochProfile epoch = uniformRdEpoch(8);
    EpochMemoryModel mem(epoch, baseConfig());
    EXPECT_LT(mem.l1dMissRate(), 0.05);
    EXPECT_LT(mem.llcLoadMissRate(), 0.05);
}

TEST(MemoryModel, MediumReuseMissesL1HitsL2)
{
    // L1D: 512 lines; L2: 4096 lines. Reuse distance 2000 lands between.
    const EpochProfile epoch = uniformRdEpoch(2000);
    EpochMemoryModel mem(epoch, baseConfig());
    EXPECT_GT(mem.l1dMissRate(), 0.9);
    EXPECT_LT(mem.l2MissRate(), 0.1);
}

TEST(MemoryModel, HugeReuseMissesEverything)
{
    // LLC: 131072 lines. Reuse distance 10M misses all levels.
    const EpochProfile epoch = uniformRdEpoch(10000000);
    EpochMemoryModel mem(epoch, baseConfig());
    EXPECT_GT(mem.l1dMissRate(), 0.9);
    EXPECT_GT(mem.l2MissRate(), 0.9);
    EXPECT_GT(mem.llcMissRate(), 0.9);
    EXPECT_NEAR(mem.llcLoadMisses(),
                static_cast<double>(epoch.numLoads), 1000.0);
}

TEST(MemoryModel, ColdAccessesAlwaysMiss)
{
    EpochProfile epoch;
    epoch.numOps = 1000;
    epoch.numLoads = 250;
    epoch.localRd.add(LogHistogram::kInfinity, 250);
    epoch.globalRd.add(LogHistogram::kInfinity, 250);
    epoch.loadLocalRd.add(LogHistogram::kInfinity, 250);
    epoch.loadGlobalRd.add(LogHistogram::kInfinity, 250);
    EpochMemoryModel mem(epoch, baseConfig());
    EXPECT_DOUBLE_EQ(mem.l1dMissRate(), 1.0);
    EXPECT_DOUBLE_EQ(mem.llcLoadMissRate(), 1.0);
}

TEST(MemoryModel, ExpectedLatencyFollowsReuseDistance)
{
    const EpochProfile epoch = uniformRdEpoch(2000);
    const MulticoreConfig cfg = baseConfig();
    EpochMemoryModel mem(epoch, cfg);

    MicroTraceOp hot;
    hot.op = OpClass::Load;
    hot.localRd = 4;
    hot.globalRd = 4;
    MicroTraceOp l2_load;
    l2_load.op = OpClass::Load;
    l2_load.localRd = 2000;
    l2_load.globalRd = 2000;
    MicroTraceOp cold;
    cold.op = OpClass::Load;
    cold.localRd = LogHistogram::kInfinity;
    cold.globalRd = LogHistogram::kInfinity;

    EXPECT_DOUBLE_EQ(mem.expectedLatency(hot),
                     static_cast<double>(cfg.core().l1d.latency));
    EXPECT_DOUBLE_EQ(mem.expectedLatency(l2_load),
                     static_cast<double>(cfg.core().l1d.latency + cfg.core().l2.latency));
    // Hit-path latency is capped at the LLC...
    EXPECT_DOUBLE_EQ(
        mem.expectedLatency(cold),
        static_cast<double>(cfg.core().l1d.latency + cfg.core().l2.latency +
                            cfg.llc.latency));
    // ...and the full latency adds DRAM.
    EXPECT_DOUBLE_EQ(
        mem.expectedLatencyFull(cold),
        static_cast<double>(cfg.core().l1d.latency + cfg.core().l2.latency +
                            cfg.llc.latency + cfg.core().memLatency));
}

TEST(MemoryModel, StoresUseStoreLatency)
{
    const EpochProfile epoch = uniformRdEpoch(2000);
    const MulticoreConfig cfg = baseConfig();
    EpochMemoryModel mem(epoch, cfg);
    MicroTraceOp store;
    store.op = OpClass::Store;
    store.localRd = LogHistogram::kInfinity;
    store.globalRd = LogHistogram::kInfinity;
    const double lat = static_cast<double>(
        cfg.core().fus[static_cast<size_t>(OpClass::Store)].latency);
    EXPECT_DOUBLE_EQ(mem.expectedLatency(store), lat);
    EXPECT_DOUBLE_EQ(mem.expectedLatencyFull(store), lat);
}

TEST(MemoryModel, SharedDataHitsLlcViaGlobalRd)
{
    // Per-thread reuse is broken (infinite) but another thread touched
    // the line recently (small global RD): the access hits the shared
    // LLC — positive interference.
    EpochProfile epoch;
    epoch.numOps = 4000;
    epoch.numLoads = 1000;
    epoch.localRd.add(LogHistogram::kInfinity, 1000);
    epoch.globalRd.add(50, 1000);
    epoch.loadLocalRd.add(LogHistogram::kInfinity, 1000);
    epoch.loadGlobalRd.add(50, 1000);
    EpochMemoryModel mem(epoch, baseConfig());
    EXPECT_DOUBLE_EQ(mem.l1dMissRate(), 1.0); // misses private levels
    EXPECT_LT(mem.llcLoadMissRate(), 0.05);   // but hits the LLC
}

TEST(MemoryModel, AblationLocalRdChangesLlcPrediction)
{
    EpochProfile epoch;
    epoch.numOps = 4000;
    epoch.numLoads = 1000;
    epoch.localRd.add(LogHistogram::kInfinity, 1000);
    epoch.globalRd.add(50, 1000);
    epoch.loadLocalRd.add(LogHistogram::kInfinity, 1000);
    epoch.loadGlobalRd.add(50, 1000);
    EpochMemoryModel with_global(epoch, baseConfig(), true);
    EpochMemoryModel without(epoch, baseConfig(), false);
    EXPECT_LT(with_global.llcLoadMissRate(), 0.05);
    EXPECT_DOUBLE_EQ(without.llcLoadMissRate(), 1.0);
}

TEST(MemoryModel, IcachePerFetchZeroForTinyCode)
{
    EpochProfile epoch;
    epoch.numOps = 10000;
    // 16 distinct instruction lines cycled: trivially L1I resident.
    epoch.instrRd.add(15, 10000);
    EpochMemoryModel mem(epoch, baseConfig());
    EXPECT_LT(mem.icachePerFetch(), 0.05);
}

TEST(MemoryModel, IcachePerFetchGrowsWithCodeFootprint)
{
    EpochProfile small, big;
    small.numOps = big.numOps = 10000;
    small.instrRd.add(100, 10000);   // 100-line loop: fits L1I
    big.instrRd.add(3000, 10000);    // 3000 lines: misses 512-line L1I
    EpochMemoryModel small_mem(small, baseConfig());
    EpochMemoryModel big_mem(big, baseConfig());
    EXPECT_GT(big_mem.icachePerFetch(),
              small_mem.icachePerFetch() + 1.0);
}

TEST(MemoryModel, BiggerLlcLowersMissRate)
{
    const EpochProfile epoch = uniformRdEpoch(200000);
    MulticoreConfig small_cfg = baseConfig();
    small_cfg.llc.sizeBytes = 2 * 1024 * 1024;
    MulticoreConfig big_cfg = baseConfig();
    big_cfg.llc.sizeBytes = 32 * 1024 * 1024;
    EpochMemoryModel small_mem(epoch, small_cfg);
    EpochMemoryModel big_mem(epoch, big_cfg);
    EXPECT_GT(small_mem.llcLoadMissRate(),
              big_mem.llcLoadMissRate());
}

// --------------------------------------------- predictEpoch properties ---

TEST(PredictEpoch, StackTotalEqualsCycles)
{
    WorkloadSpec spec = barrierLoopSpec(2, 3, 5000);
    spec.kernel.sharedFrac = 0.2;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    for (const auto &thread : prof.threads) {
        for (const auto &epoch : thread.epochs) {
            const EpochPrediction pred =
                predictEpoch(epoch, baseConfig());
            EXPECT_NEAR(pred.stack.total(), pred.cycles, 1e-6);
        }
    }
}

TEST(PredictEpoch, MlpReportedInBounds)
{
    WorkloadSpec spec = barrierLoopSpec(2, 2, 8000);
    spec.kernel.privateBytes = 32 << 20; // streaming: DRAM misses
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    const MulticoreConfig cfg = baseConfig();
    for (const auto &epoch : prof.threads[1].epochs) {
        if (epoch.numOps == 0)
            continue;
        const EpochPrediction pred = predictEpoch(epoch, cfg);
        EXPECT_GE(pred.mlp, 1.0);
        // The implied overlap cannot exceed what the window can expose.
        EXPECT_LE(pred.mlp, static_cast<double>(cfg.core().robSize));
    }
}

/** Property sweep: every suite benchmark's epochs produce finite,
 *  non-negative predictions on every Table-IV configuration. */
class EpochSanityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EpochSanityTest, AllEpochsFiniteOnAllConfigs)
{
    const auto suite = fullSuite();
    WorkloadSpec spec = suite[static_cast<size_t>(GetParam())].spec;
    spec.opsPerEpoch = std::max<uint64_t>(300, spec.opsPerEpoch / 60);
    spec.numEpochs = std::min<uint32_t>(spec.numEpochs, 6);
    spec.queueItems = std::min<uint32_t>(spec.queueItems, 12);
    spec.initOps /= 20;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    for (const MulticoreConfig &cfg : tableIvConfigs()) {
        for (const auto &thread : prof.threads) {
            for (const auto &epoch : thread.epochs) {
                const EpochPrediction pred = predictEpoch(epoch, cfg);
                EXPECT_TRUE(std::isfinite(pred.cycles));
                EXPECT_GE(pred.cycles, 0.0);
                for (double c : pred.stack.cycles) {
                    EXPECT_TRUE(std::isfinite(c));
                    EXPECT_GE(c, 0.0);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EpochSanityTest,
                         ::testing::Range(0, 26));

} // namespace
} // namespace rppm

/**
 * @file
 * Tests for the finer model mechanisms added on top of the basic Eq. 1
 * pipeline: ablation switches, flush-emulating replays, entropy-driven
 * miss rates, coarse-time causality fixes in the synchronization state
 * (join return times, queue item timestamps, barrier max-arrival), and
 * the interaction of profiler options with the model.
 */

#include <gtest/gtest.h>

#include "profile/profiler.hh"
#include "rppm/branch_model.hh"
#include "rppm/ilp_model.hh"
#include "rppm/predictor.hh"
#include "rppm/thread_model.hh"
#include "sim/simulator.hh"
#include "sim/sync_state.hh"
#include "trace/trace_builder.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

TraceRecord
syncRec(SyncType type, uint32_t arg)
{
    TraceRecord rec;
    rec.sync = type;
    rec.syncArg = arg;
    return rec;
}

// ------------------------------------------------- flush-emulated replay ---

MicroTrace
branchyTrace(size_t n, int branch_every)
{
    MicroTrace mt;
    for (size_t i = 0; i < n; ++i) {
        MicroTraceOp op;
        op.op = (i % branch_every == 0) ? OpClass::Branch : OpClass::IntAlu;
        op.dep1 = i % 3 == 0 ? 2 : 0;
        mt.ops.push_back(op);
    }
    return mt;
}

TEST(FlushReplay, ZeroMissRateMatchesPlainReplay)
{
    const MicroTrace mt = branchyTrace(2000, 5);
    const CoreConfig core = baseConfig().core();
    const auto lat = [](const MicroTraceOp &) { return 3.0; };
    const IlpResult plain = replayMicroTrace(mt, core, lat);
    const IlpResult flush = replayMicroTrace(mt, core, lat, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(plain.ipc, flush.ipc);
}

TEST(FlushReplay, MissRateLowersIpc)
{
    const MicroTrace mt = branchyTrace(2000, 5);
    const CoreConfig core = baseConfig().core();
    const auto lat = [](const MicroTraceOp &) { return 3.0; };
    const double ipc_perfect =
        replayMicroTrace(mt, core, lat, 0.0, 0.0).ipc;
    const double ipc_half = replayMicroTrace(mt, core, lat, 0.0, 0.5).ipc;
    const double ipc_all = replayMicroTrace(mt, core, lat, 0.0, 1.0).ipc;
    EXPECT_GT(ipc_perfect, ipc_half);
    EXPECT_GT(ipc_half, ipc_all);
}

TEST(FlushReplay, MonotoneInMissRate)
{
    const MicroTrace mt = branchyTrace(3000, 4);
    const CoreConfig core = baseConfig().core();
    const auto lat = [](const MicroTraceOp &) { return 3.0; };
    double prev = 1e9;
    for (double rate : {0.0, 0.1, 0.2, 0.4, 0.8}) {
        const double ipc = replayMicroTrace(mt, core, lat, 0.0, rate).ipc;
        EXPECT_LE(ipc, prev + 1e-12) << rate;
        prev = ipc;
    }
}

TEST(FlushReplay, FetchStallLowersIpc)
{
    const MicroTrace mt = branchyTrace(2000, 100);
    const CoreConfig core = baseConfig().core();
    const auto lat = [](const MicroTraceOp &) { return 3.0; };
    const double fast = replayMicroTrace(mt, core, lat, 0.0).ipc;
    const double slow = replayMicroTrace(mt, core, lat, 1.0).ipc;
    // One extra front-end cycle per op caps IPC at ~1/(1/width + 1).
    EXPECT_GT(fast, slow * 1.5);
    EXPECT_LT(slow, 1.0);
}

TEST(FlushReplay, BranchPenaltyBoundedByResolutionPlusRefill)
{
    const MicroTrace mt = branchyTrace(2000, 5);
    const CoreConfig core = baseConfig().core();
    const auto lat = [](const MicroTraceOp &) { return 3.0; };
    const IlpResult r = replayMicroTrace(mt, core, lat);
    EXPECT_GE(r.branchPenalty, 0.0);
    EXPECT_LE(r.branchPenalty,
              r.branchResolution + core.frontendDepth + 1e-9);
}

// ------------------------------------------------------ branch miss rate ---

TEST(BranchMissRate, ZeroForBranchlessEpoch)
{
    EpochProfile epoch;
    epoch.numOps = 100;
    EXPECT_DOUBLE_EQ(epochBranchMissRate(epoch, baseConfig().core()), 0.0);
}

TEST(BranchMissRate, GrowsWithEntropy)
{
    EpochProfile low, high;
    low.numOps = high.numOps = 1000;
    low.numBranches = high.numBranches = 100;
    for (int i = 0; i < 100; ++i) {
        low.branches.record(0x100, true);           // biased
        high.branches.record(0x100, i % 2 == 0);    // coin flip
    }
    EXPECT_LT(epochBranchMissRate(low, baseConfig().core()),
              epochBranchMissRate(high, baseConfig().core()));
}

// ------------------------------------------------------ ablation switches ---

class AblationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        WorkloadSpec spec = barrierLoopSpec(4, 6, 4000);
        spec.kernel.sharedFrac = 0.3;
        spec.kernel.sharedWriteFrac = 0.4;
        spec.kernel.privateBytes = 4 << 20;
        spec.kernel.branchEntropy = 0.2;
        spec.kernel.fracBranch = 0.15;
        trace_ = generateWorkload(spec);
        profile_ = profileWorkload(trace_);
    }

    WorkloadTrace trace_;
    WorkloadProfile profile_;
};

TEST_F(AblationTest, DefaultEqualsExplicitFullModel)
{
    RppmOptions full;
    const double a = predict(profile_, baseConfig()).totalCycles;
    const double b = predict(profile_, baseConfig(), full).totalCycles;
    EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(AblationTest, NoMlpOverlapPredictsMoreCycles)
{
    RppmOptions no_mlp;
    no_mlp.eq1.mlpOverlap = false;
    const double full = predict(profile_, baseConfig()).totalCycles;
    const double serial =
        predict(profile_, baseConfig(), no_mlp).totalCycles;
    EXPECT_GT(serial, full);
}

TEST_F(AblationTest, NoBranchPredictsFewerCycles)
{
    RppmOptions no_branch;
    no_branch.eq1.branch = false;
    const double full = predict(profile_, baseConfig()).totalCycles;
    const double perfect =
        predict(profile_, baseConfig(), no_branch).totalCycles;
    EXPECT_LT(perfect, full);
}

TEST_F(AblationTest, NoIlpReplayStillPositive)
{
    RppmOptions no_ilp;
    no_ilp.eq1.ilpReplay = false;
    const RppmPrediction pred =
        predict(profile_, baseConfig(), no_ilp);
    EXPECT_GT(pred.totalCycles, 0.0);
    for (const auto &thread : pred.threads) {
        for (const auto &epoch : thread.epochs) {
            if (epoch.cycles > 0.0) { // empty epochs keep the default
                EXPECT_DOUBLE_EQ(
                    epoch.deff,
                    static_cast<double>(baseConfig().core().dispatchWidth));
            }
        }
    }
}

TEST_F(AblationTest, LocalRdForLlcChangesPrediction)
{
    RppmOptions local;
    local.eq1.llcUsesGlobalRd = false;
    const double with_global =
        predict(profile_, baseConfig()).totalCycles;
    const double with_local =
        predict(profile_, baseConfig(), local).totalCycles;
    // Shared-heavy workload: interference modeling must matter.
    EXPECT_NE(with_global, with_local);
}

TEST_F(AblationTest, FastModeMatchesDecomposedTotal)
{
    RppmOptions fast;
    fast.eq1.decompose = false;
    const RppmPrediction full = predict(profile_, baseConfig());
    const RppmPrediction quick =
        predict(profile_, baseConfig(), fast);
    // The decomposed components telescope to the final replay, so the
    // fast path predicts the same total (up to component clamping).
    EXPECT_NEAR(quick.totalCycles / full.totalCycles, 1.0, 0.02);
    // ...but reports everything as Base.
    for (const auto &thread : quick.threads) {
        EXPECT_DOUBLE_EQ(thread.stack[CpiComponent::MemDram], 0.0);
        EXPECT_DOUBLE_EQ(thread.stack[CpiComponent::Branch], 0.0);
    }
}

TEST_F(AblationTest, ProfilerInvalidationSwitch)
{
    ProfilerOptions no_coh;
    no_coh.detectInvalidation = false;
    const WorkloadProfile stripped = profileWorkload(trace_, no_coh);
    uint64_t with_inv = 0, without_inv = 0;
    for (uint32_t t = 0; t < profile_.numThreads; ++t) {
        for (size_t e = 0; e < profile_.threads[t].epochs.size(); ++e) {
            with_inv +=
                profile_.threads[t].epochs[e].localRd.totalInfinite();
            without_inv +=
                stripped.threads[t].epochs[e].localRd.totalInfinite();
        }
    }
    // Write sharing is heavy here: invalidation detection must add
    // infinite reuse distances.
    EXPECT_GT(with_inv, without_inv);
}

// ------------------------------------------------ coarse-time causality ---

TEST(SyncCausality, JoinReturnsAtChildFinishTime)
{
    SyncState s(2, {});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    // Child's symbolic timeline completes at t=500 before the parent
    // even arrives at the join (coarse epoch jumps).
    s.finish(1, 500.0);
    const auto out = s.apply(0, syncRec(SyncType::ThreadJoin, 1), 100.0);
    EXPECT_FALSE(out.blocks);
    ASSERT_EQ(out.released.size(), 1u);
    EXPECT_EQ(out.released[0].first, 0u);
    EXPECT_DOUBLE_EQ(out.released[0].second, 500.0);
}

TEST(SyncCausality, JoinAfterChildFinishNoAdjustment)
{
    SyncState s(2, {});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    s.finish(1, 50.0);
    const auto out = s.apply(0, syncRec(SyncType::ThreadJoin, 1), 100.0);
    EXPECT_FALSE(out.blocks);
    EXPECT_TRUE(out.released.empty());
}

TEST(SyncCausality, QueueItemCannotBeConsumedBeforeProduced)
{
    SyncState s(2, {});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    // Producer pushes at t=300 (its coarse timeline ran ahead).
    s.apply(0, syncRec(SyncType::QueuePush, 7), 300.0);
    // Consumer pops at its local t=10: it must be advanced to t=300.
    const auto out = s.apply(1, syncRec(SyncType::QueuePop, 7), 10.0);
    EXPECT_FALSE(out.blocks);
    ASSERT_EQ(out.released.size(), 1u);
    EXPECT_DOUBLE_EQ(out.released[0].second, 300.0);
}

TEST(SyncCausality, QueueItemInPastNeedsNoAdjustment)
{
    SyncState s(2, {});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    s.apply(0, syncRec(SyncType::QueuePush, 7), 5.0);
    const auto out = s.apply(1, syncRec(SyncType::QueuePop, 7), 10.0);
    EXPECT_FALSE(out.blocks);
    EXPECT_TRUE(out.released.empty());
}

TEST(SyncCausality, QueueItemsConsumedInFifoOrder)
{
    SyncState s(2, {});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    s.apply(0, syncRec(SyncType::QueuePush, 7), 100.0);
    s.apply(0, syncRec(SyncType::QueuePush, 7), 200.0);
    auto out = s.apply(1, syncRec(SyncType::QueuePop, 7), 0.0);
    ASSERT_EQ(out.released.size(), 1u);
    EXPECT_DOUBLE_EQ(out.released[0].second, 100.0);
    out = s.apply(1, syncRec(SyncType::QueuePop, 7), 150.0);
    ASSERT_EQ(out.released.size(), 1u);
    EXPECT_DOUBLE_EQ(out.released[0].second, 200.0);
}

TEST(SyncCausality, BarrierLastApplierAdvancedToMaxArrival)
{
    SyncState s(2, {{3, 2}});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    // Thread 1's coarse timeline arrives at 900, applies first, blocks.
    EXPECT_TRUE(s.apply(1, syncRec(SyncType::BarrierWait, 3), 900.0)
                .blocks);
    // Thread 0 arrives "later" in apply order but earlier in time: the
    // barrier opens at 900 for both.
    const auto out = s.apply(0, syncRec(SyncType::BarrierWait, 3), 100.0);
    EXPECT_FALSE(out.blocks);
    ASSERT_EQ(out.released.size(), 2u);
    for (const auto &[tid, when] : out.released)
        EXPECT_DOUBLE_EQ(when, 900.0);
}

// ----------------------------------------------------- bus contention ---

TEST(BusContention, SimulatorSlowsUnderLimitedBandwidth)
{
    WorkloadSpec spec = barrierLoopSpec(4, 4, 8000);
    spec.kernel.privateBytes = 32 << 20; // streams to DRAM
    spec.kernel.fracLoad = 0.35;
    const WorkloadTrace trace = generateWorkload(spec);
    MulticoreConfig free_bus = baseConfig();
    MulticoreConfig tight_bus = baseConfig();
    tight_bus.memBusCycles = 32; // each transfer occupies the bus
    const double t_free = simulate(trace, free_bus).totalCycles;
    const double t_tight = simulate(trace, tight_bus).totalCycles;
    EXPECT_GT(t_tight, t_free * 1.1);
}

TEST(BusContention, ComputeBoundWorkloadUnaffected)
{
    WorkloadSpec spec = barrierLoopSpec(2, 4, 5000);
    spec.kernel.privateBytes = 8 << 10; // L1-resident
    spec.kernel.reuseFrac = 0.8;
    spec.kernel.fracLoad = 0.1;
    const WorkloadTrace trace = generateWorkload(spec);
    MulticoreConfig tight_bus = baseConfig();
    tight_bus.memBusCycles = 32;
    // Only the cold-start misses queue; the loop body is bus-free.
    const double t_free = simulate(trace, baseConfig()).totalCycles;
    const double t_tight = simulate(trace, tight_bus).totalCycles;
    EXPECT_NEAR(t_tight / t_free, 1.0, 0.10);
}

TEST(BusContention, ModelFollowsSimulatorDirection)
{
    // Deep saturation (6x oversubscribed bus): the analytic mirror can
    // only assert the direction — the simulator's transient queue
    // dynamics make it much slower than the steady-state bound.
    WorkloadSpec spec = barrierLoopSpec(4, 4, 8000);
    spec.kernel.privateBytes = 32 << 20;
    spec.kernel.fracLoad = 0.35;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile profile = profileWorkload(trace);
    MulticoreConfig tight_bus = baseConfig();
    tight_bus.memBusCycles = 32;
    const double p_free =
        predict(profile, baseConfig()).totalCycles;
    const double p_tight = predict(profile, tight_bus).totalCycles;
    EXPECT_GT(p_tight, p_free * 1.5);
}

TEST(BusContention, ModelBallparkAtModerateLoad)
{
    // Near the service/arrival balance point the M/D/1 mirror should
    // land in the simulator's ballpark.
    WorkloadSpec spec = barrierLoopSpec(4, 4, 8000);
    spec.kernel.privateBytes = 32 << 20;
    spec.kernel.fracLoad = 0.35;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile profile = profileWorkload(trace);
    MulticoreConfig bus = baseConfig();
    bus.memBusCycles = 4;
    const double p = predict(profile, bus).totalCycles;
    const double s = simulate(trace, bus).totalCycles;
    EXPECT_NEAR(p / s, 1.0, 0.45);
}

TEST(BusContention, ZeroBusCyclesIsNoOp)
{
    WorkloadSpec spec = barrierLoopSpec(2, 3, 4000);
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile profile = profileWorkload(trace);
    MulticoreConfig a = baseConfig();
    MulticoreConfig b = baseConfig();
    b.memBusCycles = 0;
    EXPECT_DOUBLE_EQ(predict(profile, a).totalCycles,
                     predict(profile, b).totalCycles);
    EXPECT_DOUBLE_EQ(simulate(trace, a).totalCycles,
                     simulate(trace, b).totalCycles);
}

// ------------------------------------------- simulator idle-thread sanity ---

TEST(SimulatorSanity, MainIdleTimeMatchesWorkerSpan)
{
    // Main creates one worker doing a long run and joins: main's sync
    // idle must be ~the worker's runtime.
    WorkloadTrace trace;
    trace.name = "idle";
    trace.threads.resize(2);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::ThreadCreate, 1);
    main.sync(SyncType::ThreadJoin, 1);
    ThreadTraceBuilder worker(trace.threads[1]);
    for (int i = 0; i < 20000; ++i)
        worker.op(OpClass::IntAlu, 4 * (i % 64), 1);
    const SimResult res = simulate(trace, baseConfig());
    EXPECT_GT(res.threads[0].syncCycles,
              0.9 * res.threads[1].activeCycles);
}

TEST(SimulatorSanity, PredictedIdleTracksSimulatedIdle)
{
    WorkloadSpec spec = barrierLoopSpec(4, 10, 3000);
    spec.epochJitter = 0.5;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile profile = profileWorkload(trace);
    const SimResult sim = simulate(trace, baseConfig());
    const RppmPrediction pred = predict(profile, baseConfig());
    double sim_idle = 0.0, pred_idle = 0.0;
    for (size_t t = 0; t < sim.threads.size(); ++t) {
        sim_idle += sim.threads[t].syncCycles;
        pred_idle += pred.threadIdle[t];
    }
    ASSERT_GT(sim_idle, 0.0);
    EXPECT_NEAR(pred_idle / sim_idle, 1.0, 0.5);
}

} // namespace
} // namespace rppm

/**
 * @file
 * Differential tests for the memoized component-level prediction engine:
 * predictGrid (shared EpochStacks, per-thread Eq.-1 memoization, sync
 * reuse) must be bit-identical to predictLegacyGrid (naive per-point
 * rppm::predict) on every suite kernel across the Table-IV/Table-V
 * design grid, a per-core DVFS ladder, a big.LITTLE placement sweep and
 * a bus-contention config — plus Study-level equivalence, worker-pool
 * determinism and cache-efficiency accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "arch/component_key.hh"
#include "arch/config.hh"
#include "profile/profiler.hh"
#include "rppm/memo.hh"
#include "rppm/predictor.hh"
#include "study/study.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

/** Shrink a suite spec to test-friendly size while keeping structure. */
WorkloadSpec
shrink(WorkloadSpec spec, uint64_t divisor = 20)
{
    spec.opsPerEpoch = std::max<uint64_t>(500, spec.opsPerEpoch / divisor);
    spec.initOps = std::max<uint64_t>(200, spec.initOps / divisor);
    spec.finalOps = std::max<uint64_t>(100, spec.finalOps / divisor);
    spec.numEpochs = std::min<uint32_t>(spec.numEpochs, 12);
    spec.queueItems = std::min<uint32_t>(spec.queueItems, 30);
    spec.csPerEpoch = std::min<uint32_t>(spec.csPerEpoch, 12);
    return spec;
}

/** EXPECT bit-exact equality of two predictions, component by
 *  component. */
void
expectIdentical(const RppmPrediction &a, const RppmPrediction &b,
                const std::string &context)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << context;
    EXPECT_EQ(a.totalSeconds, b.totalSeconds) << context;
    ASSERT_EQ(a.threads.size(), b.threads.size()) << context;
    ASSERT_EQ(a.threadIdle.size(), b.threadIdle.size()) << context;
    ASSERT_EQ(a.threadSeconds.size(), b.threadSeconds.size()) << context;
    EXPECT_EQ(a.threadCoreIds, b.threadCoreIds) << context;
    for (size_t t = 0; t < a.threads.size(); ++t) {
        const ThreadPrediction &ta = a.threads[t];
        const ThreadPrediction &tb = b.threads[t];
        EXPECT_EQ(ta.activeCycles, tb.activeCycles) << context << " t" << t;
        EXPECT_EQ(ta.instructions, tb.instructions) << context << " t" << t;
        for (size_t k = 0; k < kNumCpiComponents; ++k) {
            const auto comp = static_cast<CpiComponent>(k);
            EXPECT_EQ(ta.stack[comp], tb.stack[comp])
                << context << " t" << t << " component " << k;
        }
        ASSERT_EQ(ta.epochs.size(), tb.epochs.size()) << context;
        for (size_t e = 0; e < ta.epochs.size(); ++e) {
            EXPECT_EQ(ta.epochs[e].cycles, tb.epochs[e].cycles)
                << context << " t" << t << " epoch " << e;
            EXPECT_EQ(ta.epochs[e].deff, tb.epochs[e].deff)
                << context << " t" << t << " epoch " << e;
            EXPECT_EQ(ta.epochs[e].mlp, tb.epochs[e].mlp)
                << context << " t" << t << " epoch " << e;
        }
        EXPECT_EQ(a.threadIdle[t], b.threadIdle[t]) << context << " t" << t;
        EXPECT_EQ(a.threadSeconds[t], b.threadSeconds[t])
            << context << " t" << t;
    }
}

void
expectGridsIdentical(const WorkloadProfile &profile,
                     const std::vector<MulticoreConfig> &grid,
                     const RppmOptions &opts, const std::string &context)
{
    const auto legacy = predictLegacyGrid(profile, grid, opts);
    const auto memo = predictGrid(profile, grid, opts);
    ASSERT_EQ(legacy.size(), memo.size());
    for (size_t i = 0; i < legacy.size(); ++i)
        expectIdentical(legacy[i], memo[i],
                        context + "/" + grid[i].name);
}

/** The Table-V DSE design space is the Table-IV grid (iso-throughput
 *  width/frequency points). */
std::vector<MulticoreConfig>
tableIvVGrid()
{
    return tableIvConfigs();
}

std::vector<MulticoreConfig>
dvfsGrid()
{
    const MulticoreConfig base = baseConfig();
    std::vector<MulticoreConfig> grid;
    int i = 0;
    for (double ghz : {1.67, 2.5, 3.33}) {
        grid.push_back(dvfsConfig(base, {2.5, ghz, 2.5, ghz},
                                  "dvfs-" + std::to_string(i++)));
    }
    return grid;
}

// ------------------------------------------- suite-wide bit identity ---

TEST(PredictMemo, BitIdenticalOnTableIvGridAllKernels)
{
    for (const SuiteEntry &entry : fullSuite()) {
        const WorkloadSpec spec = shrink(entry.spec);
        const WorkloadProfile prof =
            profileWorkload(generateWorkload(spec));
        expectGridsIdentical(prof, tableIvVGrid(), {}, spec.name);
    }
}

TEST(PredictMemo, BitIdenticalOnMappingSweepAllKernels)
{
    for (const SuiteEntry &entry : fullSuite()) {
        const WorkloadSpec spec = shrink(entry.spec);
        const WorkloadProfile prof =
            profileWorkload(generateWorkload(spec));
        expectGridsIdentical(
            prof, mappingSweep(bigLittleConfig(2, 2), spec.numThreads()),
            {}, spec.name + "/mapping");
    }
}

TEST(PredictMemo, BitIdenticalOnDvfsAndBusGrids)
{
    // Heavier per-kernel grids on a representative subset: a per-core
    // DVFS ladder (per-core DRAM rescale) and a bus-contention config
    // (clock-domain fields enter the component keys only here).
    int i = 0;
    for (const SuiteEntry &entry : fullSuite()) {
        if (++i % 5 != 1)
            continue;
        const WorkloadSpec spec = shrink(entry.spec);
        const WorkloadProfile prof =
            profileWorkload(generateWorkload(spec));
        std::vector<MulticoreConfig> grid = dvfsGrid();
        MulticoreConfig bus = baseConfig();
        bus.name = "bus";
        bus.memBusCycles = 8;
        grid.push_back(bus);
        MulticoreConfig bus2 = bus;
        bus2.name = "bus-fast";
        bus2.eachCore([](CoreConfig &c) { c.frequencyGHz = 3.2; });
        grid.push_back(bus2);
        expectGridsIdentical(prof, grid, {}, spec.name + "/dvfs+bus");
    }
}

TEST(PredictMemo, BitIdenticalUnderOptionVariants)
{
    // Ablation options flow into the cache keys; every variant must
    // stay bit-identical to its own naive evaluation.
    const WorkloadSpec spec = shrink(fullSuite()[2].spec);
    const WorkloadProfile prof = profileWorkload(generateWorkload(spec));
    for (int variant = 0; variant < 5; ++variant) {
        RppmOptions opts;
        switch (variant) {
        case 0: opts.eq1.decompose = false; break;
        case 1: opts.eq1.ilpReplay = false; break;
        case 2: opts.eq1.llcUsesGlobalRd = false; break;
        case 3: opts.eq1.mlpOverlap = false; break;
        case 4: opts.eq1.branch = false; break;
        }
        expectGridsIdentical(prof, tableIvVGrid(), opts,
                             "variant" + std::to_string(variant));
    }
}

// ----------------------------------------------- engine/key behaviour ---

TEST(PredictMemo, MappingSweepReusesThreadEvaluations)
{
    const WorkloadSpec spec = shrink(fullSuite()[0].spec);
    const WorkloadProfile prof = profileWorkload(generateWorkload(spec));
    const auto grid = mappingSweep(bigLittleConfig(2, 2),
                                   spec.numThreads());
    ASSERT_GT(grid.size(), 1u);

    MemoStats stats;
    predictGrid(prof, grid, {}, &stats);
    // A placement sweep touches two core kinds, so each thread is
    // evaluated at most twice no matter how many placements exist.
    EXPECT_EQ(stats.predictions, grid.size());
    EXPECT_LE(stats.threadEvals, 2u * prof.numThreads);
    EXPECT_GT(stats.threadHits, 0u);
    // Every epoch's stack bundle is built exactly once across the grid.
    EXPECT_GT(stats.curveHits, 0u);
}

TEST(PredictMemo, DvfsAxisIsFreeWithBusOff)
{
    // With the bus off, frequency enters phase 1 only through the DVFS
    // factory's DRAM-latency rescale; two states with the same rescaled
    // memLatency share every component key.
    const WorkloadSpec spec = shrink(fullSuite()[0].spec);
    const WorkloadProfile prof = profileWorkload(generateWorkload(spec));
    const MulticoreConfig base = baseConfig();

    // dvfs at the reference frequency rescales memLatency by 1.0: the
    // per-thread keys must match Base exactly.
    const MulticoreConfig same =
        dvfsConfig(base, {2.5, 2.5, 2.5, 2.5}, "dvfs-ref");
    for (uint32_t t = 0; t < prof.numThreads; ++t) {
        EXPECT_EQ(threadComponentKey(base, t), threadComponentKey(same, t));
    }

    MemoStats stats;
    predictGrid(prof, {base, same}, {}, &stats);
    EXPECT_EQ(stats.threadEvals, prof.numThreads);
    EXPECT_EQ(stats.threadHits, prof.numThreads);
    // Identical scales and keys: the sync execution is reused too.
    EXPECT_EQ(stats.syncRuns, 1u);
    EXPECT_EQ(stats.syncHits, 1u);
}

TEST(PredictMemo, ComponentKeysIsolateSubsets)
{
    const MulticoreConfig base = baseConfig();
    const ComponentKeys keys = componentKeys(base, base.core());

    // ROB only invalidates the core term.
    MulticoreConfig rob = base;
    rob.eachCore([](CoreConfig &c) { c.robSize *= 2; });
    const ComponentKeys robKeys = componentKeys(rob, rob.core());
    EXPECT_EQ(keys.memory, robKeys.memory);
    EXPECT_EQ(keys.branch, robKeys.branch);
    EXPECT_NE(keys.core, robKeys.core);
    EXPECT_EQ(keys.bus, robKeys.bus);

    // LLC size only invalidates the memory component.
    MulticoreConfig llc = base;
    llc.llc.sizeBytes *= 2;
    const ComponentKeys llcKeys = componentKeys(llc, llc.core());
    EXPECT_NE(keys.memory, llcKeys.memory);
    EXPECT_EQ(keys.core, llcKeys.core);

    // Predictor budget only invalidates the branch component.
    MulticoreConfig bp = base;
    bp.eachCore([](CoreConfig &c) { c.branch.totalBytes *= 2; });
    const ComponentKeys bpKeys = componentKeys(bp, bp.core());
    EXPECT_EQ(keys.memory, bpKeys.memory);
    EXPECT_NE(keys.branch, bpKeys.branch);
    EXPECT_EQ(keys.core, bpKeys.core);

    // Frequency alone invalidates nothing while the bus is off, and the
    // bus key once it is on.
    MulticoreConfig fast = base;
    fast.eachCore([](CoreConfig &c) { c.frequencyGHz = 3.6; });
    const ComponentKeys fastKeys = componentKeys(fast, fast.core());
    EXPECT_EQ(keys.full(), fastKeys.full());
    MulticoreConfig busCfg = fast;
    busCfg.memBusCycles = 4;
    const ComponentKeys busKeys = componentKeys(busCfg, busCfg.core());
    EXPECT_NE(keys.bus, busKeys.bus);
}

// -------------------------------------------------- Study integration ---

TEST(PredictMemo, StudyMemoizedMatchesLegacyStudy)
{
    const WorkloadSpec spec = shrink(fullSuite()[1].spec);
    const WorkloadTrace trace = generateWorkload(spec);
    std::vector<MulticoreConfig> grid = tableIvConfigs();
    for (const MulticoreConfig &m :
         mappingSweep(bigLittleConfig(2, 2), spec.numThreads()))
        grid.push_back(m);

    const auto runStudy = [&](bool memoize, unsigned jobs) {
        Study study;
        study.addWorkload(trace)
            .addConfigs(grid)
            .addEvaluator("rppm")
            .memoization(memoize)
            .jobs(jobs);
        return study.run();
    };

    const StudyResult legacy = runStudy(false, 1);
    const StudyResult memo = runStudy(true, 1);
    const StudyResult memoParallel = runStudy(true, 4);

    ASSERT_EQ(legacy.cells().size(), memo.cells().size());
    for (size_t i = 0; i < legacy.cells().size(); ++i) {
        EXPECT_EQ(legacy.cells()[i].cycles, memo.cells()[i].cycles);
        EXPECT_EQ(legacy.cells()[i].seconds, memo.cells()[i].seconds);
        EXPECT_EQ(legacy.cells()[i].threadSeconds,
                  memo.cells()[i].threadSeconds);
        // Worker count must not change a single bit either.
        EXPECT_EQ(legacy.cells()[i].cycles,
                  memoParallel.cells()[i].cycles);
        EXPECT_EQ(legacy.cells()[i].workload,
                  memoParallel.cells()[i].workload);
        EXPECT_EQ(legacy.cells()[i].config, memoParallel.cells()[i].config);
    }
}

TEST(PredictMemo, StudyReportsCacheEfficiency)
{
    const WorkloadSpec spec = shrink(fullSuite()[0].spec);
    const WorkloadTrace trace = generateWorkload(spec);

    Study study;
    study.addWorkload(trace)
        .addConfigs(mappingSweep(bigLittleConfig(2, 2), spec.numThreads()))
        .addEvaluator("rppm");
    const StudyResult result = study.run();
    ASSERT_FALSE(result.cells().empty());

    ASSERT_TRUE(study.lastMemoStats().has_value());
    const MemoStats &stats = *study.lastMemoStats();
    EXPECT_EQ(stats.predictions, result.cells().size());
    EXPECT_GT(stats.threadHits, 0u);
    EXPECT_FALSE(stats.summary().empty());

    // Legacy mode neither engages the pool nor reports stats.
    Study legacy;
    legacy.addWorkload(trace)
        .addConfigs(tableIvConfigs())
        .addEvaluator("rppm")
        .memoization(false);
    legacy.run();
    EXPECT_FALSE(legacy.lastMemoStats().has_value());
}

TEST(PredictMemo, MixedEvaluatorsShareOneGrid)
{
    // Memo-capable and baseline evaluators coexist in one sharded grid.
    const WorkloadSpec spec = shrink(fullSuite()[0].spec, 40);
    const WorkloadTrace trace = generateWorkload(spec);

    Study study;
    study.addWorkload(trace)
        .addConfigs(tableIvConfigs())
        .addEvaluator("rppm")
        .addEvaluator("main")
        .addEvaluator("crit")
        .jobs(4);
    const StudyResult grid = study.run();
    for (const std::string &cfg : grid.configs()) {
        EXPECT_GT(grid.at(spec.name, cfg, "rppm").cycles, 0.0);
        EXPECT_GT(grid.at(spec.name, cfg, "main").cycles, 0.0);
        EXPECT_GT(grid.at(spec.name, cfg, "crit").cycles, 0.0);
    }
}

} // namespace
} // namespace rppm

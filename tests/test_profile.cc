/**
 * @file
 * Unit tests for src/profile: epoch delineation, per-thread and global
 * reuse distances, write-invalidation detection, micro-trace sampling,
 * condvar classification and Table-III sync counts.
 */

#include <gtest/gtest.h>

#include "profile/profiler.hh"
#include "trace/trace_builder.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

/** Single-thread trace wrapper. */
WorkloadTrace
singleThread(ThreadTrace thread)
{
    WorkloadTrace trace;
    trace.name = "single";
    trace.threads.push_back(std::move(thread));
    return trace;
}

TEST(Profiler, CountsOpsAndMix)
{
    ThreadTrace t;
    ThreadTraceBuilder b(t);
    for (int i = 0; i < 100; ++i)
        b.op(OpClass::IntAlu, 4 * (i % 16));
    for (int i = 0; i < 50; ++i)
        b.load(0x1000 + 64 * (i % 8), 0x100);
    for (int i = 0; i < 25; ++i)
        b.store(0x2000 + 64 * (i % 4), 0x104);
    for (int i = 0; i < 10; ++i)
        b.branch(0x108, true);

    const WorkloadProfile prof = profileWorkload(singleThread(std::move(t)));
    ASSERT_EQ(prof.threads.size(), 1u);
    ASSERT_EQ(prof.threads[0].epochs.size(), 1u);
    const EpochProfile &ep = prof.threads[0].epochs[0];
    EXPECT_EQ(ep.numOps, 185u);
    EXPECT_EQ(ep.numLoads, 50u);
    EXPECT_EQ(ep.numStores, 25u);
    EXPECT_EQ(ep.numBranches, 10u);
    EXPECT_EQ(ep.mix[static_cast<size_t>(OpClass::IntAlu)], 100u);
    EXPECT_EQ(ep.endType, SyncType::None);
}

TEST(Profiler, EpochsSplitAtSyncEvents)
{
    WorkloadTrace trace;
    trace.threads.resize(2);
    ThreadTraceBuilder main(trace.threads[0]);
    main.op(OpClass::IntAlu, 0);
    main.sync(SyncType::ThreadCreate, 1);
    main.op(OpClass::IntAlu, 4);
    main.op(OpClass::IntAlu, 8);
    main.sync(SyncType::ThreadJoin, 1);
    main.op(OpClass::IntAlu, 12);
    ThreadTraceBuilder worker(trace.threads[1]);
    worker.op(OpClass::IntAlu, 16);

    const WorkloadProfile prof = profileWorkload(trace);
    // Main: [1 op | Create] [2 ops | Join] [1 op | None] = 3 epochs.
    ASSERT_EQ(prof.threads[0].epochs.size(), 3u);
    EXPECT_EQ(prof.threads[0].epochs[0].numOps, 1u);
    EXPECT_EQ(prof.threads[0].epochs[0].endType, SyncType::ThreadCreate);
    EXPECT_EQ(prof.threads[0].epochs[1].numOps, 2u);
    EXPECT_EQ(prof.threads[0].epochs[1].endType, SyncType::ThreadJoin);
    EXPECT_EQ(prof.threads[0].epochs[2].numOps, 1u);
    EXPECT_EQ(prof.threads[0].epochs[2].endType, SyncType::None);
}

TEST(Profiler, MarkersDoNotSplitEpochs)
{
    ThreadTrace t;
    ThreadTraceBuilder b(t);
    b.op(OpClass::IntAlu, 0);
    b.sync(SyncType::CondMarker, 9);
    b.op(OpClass::IntAlu, 4);
    const WorkloadProfile prof = profileWorkload(singleThread(std::move(t)));
    ASSERT_EQ(prof.threads[0].epochs.size(), 1u);
    EXPECT_EQ(prof.threads[0].epochs[0].numOps, 2u);
}

TEST(Profiler, LocalReuseDistances)
{
    // Access pattern to one line: L, 3 fillers, L => reuse distance 3.
    ThreadTrace t;
    ThreadTraceBuilder b(t);
    b.load(0x1000, 0x0);
    b.load(0x2000, 0x4);
    b.load(0x3000, 0x8);
    b.load(0x4000, 0xc);
    b.load(0x1000, 0x10);
    const WorkloadProfile prof = profileWorkload(singleThread(std::move(t)));
    const EpochProfile &ep = prof.threads[0].epochs[0];
    // 4 cold accesses (infinite) + 1 access with reuse distance 3.
    EXPECT_EQ(ep.localRd.totalInfinite(), 4u);
    EXPECT_EQ(ep.localRd.totalFinite(), 1u);
    EXPECT_NEAR(ep.localRd.meanFinite(), 3.0, 1e-9);
}

TEST(Profiler, GlobalReuseSeesOtherThreads)
{
    // Two threads ping-pong on one line. Per-thread reuse distance is 0
    // fillers between own accesses... but globally the other thread's
    // access sits in between, and the line was last touched by the peer.
    WorkloadTrace trace;
    trace.threads.resize(2);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::ThreadCreate, 1);
    for (int i = 0; i < 100; ++i)
        main.load(0x5000, 0x0);
    main.sync(SyncType::ThreadJoin, 1);
    ThreadTraceBuilder worker(trace.threads[1]);
    for (int i = 0; i < 100; ++i)
        worker.load(0x5000, 0x40);

    const WorkloadProfile prof = profileWorkload(trace);
    // Global distances exist for both threads and are small (sharing).
    for (uint32_t tid = 0; tid < 2; ++tid) {
        uint64_t finite = 0;
        for (const auto &ep : prof.threads[tid].epochs)
            finite += ep.globalRd.totalFinite();
        EXPECT_GT(finite, 0u) << "thread " << tid;
    }
}

TEST(Profiler, WriteInvalidationRecordedAsInfinite)
{
    // Worker writes the line between two reads by main: main's second
    // read must be recorded as an invalidation (infinite local reuse
    // distance), per the paper's coherence modeling.
    WorkloadTrace trace;
    trace.threads.resize(2);
    ThreadTraceBuilder main(trace.threads[0]);
    main.load(0x9000, 0x0);            // main's first read (cold)
    main.sync(SyncType::ThreadCreate, 1);
    main.sync(SyncType::BarrierWait, 50);
    main.load(0x9000, 0x8);            // second read: invalidated
    main.sync(SyncType::ThreadJoin, 1);
    ThreadTraceBuilder worker(trace.threads[1]);
    worker.store(0x9000, 0x40);        // remote write in between
    worker.sync(SyncType::BarrierWait, 50);

    const WorkloadProfile prof = profileWorkload(trace);
    // Main's post-barrier epoch holds the invalidated read.
    const auto &epochs = prof.threads[0].epochs;
    uint64_t infinite_reads = 0;
    for (const auto &ep : epochs)
        infinite_reads += ep.loadLocalRd.totalInfinite();
    // Both the cold first read and the invalidated second read count.
    EXPECT_EQ(infinite_reads, 2u);
}

TEST(Profiler, OwnWriteDoesNotInvalidate)
{
    ThreadTrace t;
    ThreadTraceBuilder b(t);
    b.load(0x9000, 0x0);
    b.store(0x9000, 0x4);
    b.load(0x9000, 0x8);
    const WorkloadProfile prof = profileWorkload(singleThread(std::move(t)));
    const EpochProfile &ep = prof.threads[0].epochs[0];
    EXPECT_EQ(ep.localRd.totalInfinite(), 1u); // only the cold access
    EXPECT_EQ(ep.localRd.totalFinite(), 2u);
}

TEST(Profiler, MicroTraceSampledAtEpochStart)
{
    ThreadTrace t;
    ThreadTraceBuilder b(t);
    for (int i = 0; i < 500; ++i)
        b.op(OpClass::IntAlu, 4 * (i % 16), 1);
    const WorkloadProfile prof = profileWorkload(singleThread(std::move(t)));
    const EpochProfile &ep = prof.threads[0].epochs[0];
    ASSERT_EQ(ep.microTraces.size(), 1u);
    EXPECT_EQ(ep.microTraces[0].ops.size(), 500u); // whole short epoch
    EXPECT_EQ(ep.microTraces[0].ops[10].dep1, 1u);
}

TEST(Profiler, MicroTraceRespectsSamplingInterval)
{
    ThreadTrace t;
    ThreadTraceBuilder b(t);
    for (int i = 0; i < 30000; ++i)
        b.op(OpClass::IntAlu, 4 * (i % 16));
    ProfilerOptions opts;
    opts.microTraceLength = 100;
    opts.microTraceInterval = 10000;
    const WorkloadProfile prof =
        profileWorkload(singleThread(std::move(t)), opts);
    const EpochProfile &ep = prof.threads[0].epochs[0];
    // Samples at op 0, 10100, 20200 => 3 micro-traces of 100 ops.
    EXPECT_EQ(ep.microTraces.size(), 3u);
    for (const auto &mt : ep.microTraces)
        EXPECT_EQ(mt.ops.size(), 100u);
}

TEST(Profiler, LoadGapTracksSpacing)
{
    ThreadTrace t;
    ThreadTraceBuilder b(t);
    for (int i = 0; i < 100; ++i) {
        b.op(OpClass::IntAlu, 0);
        b.op(OpClass::IntAlu, 4);
        b.op(OpClass::IntAlu, 8);
        b.load(0x1000 + 64 * i, 0xc);
    }
    const WorkloadProfile prof = profileWorkload(singleThread(std::move(t)));
    const EpochProfile &ep = prof.threads[0].epochs[0];
    EXPECT_NEAR(ep.meanLoadGap(), 3.0, 0.1);
}

TEST(Profiler, PointerChaseDetected)
{
    ThreadTrace t;
    ThreadTraceBuilder b(t);
    b.load(0x1000, 0x0);
    for (int i = 0; i < 99; ++i)
        b.load(0x1000 + 64 * i, 0x4, 1); // each load depends on previous
    const WorkloadProfile prof = profileWorkload(singleThread(std::move(t)));
    const EpochProfile &ep = prof.threads[0].epochs[0];
    EXPECT_EQ(ep.loadsDependingOnLoad, 99u);
}

TEST(Profiler, BranchEntropyCollected)
{
    ThreadTrace t;
    ThreadTraceBuilder b(t);
    for (int i = 0; i < 1000; ++i)
        b.branch(0x100, i % 2 == 0); // coin flip branch
    const WorkloadProfile prof = profileWorkload(singleThread(std::move(t)));
    const EpochProfile &ep = prof.threads[0].epochs[0];
    EXPECT_NEAR(ep.branches.averageLinearEntropy(), 0.5, 1e-6);
}

TEST(Profiler, InstructionReuseDistances)
{
    ThreadTrace t;
    ThreadTraceBuilder b(t);
    // 4 distinct PC lines cycled: instruction reuse distance 3.
    for (int i = 0; i < 400; ++i)
        b.op(OpClass::IntAlu, 64 * (i % 4));
    const WorkloadProfile prof = profileWorkload(singleThread(std::move(t)));
    const EpochProfile &ep = prof.threads[0].epochs[0];
    EXPECT_EQ(ep.instrRd.totalInfinite(), 4u);
    EXPECT_NEAR(ep.instrRd.meanFinite(), 3.0, 0.1);
}

TEST(Profiler, SyncCountsMatchTableIiiCategories)
{
    WorkloadSpec spec;
    spec.numEpochs = 4;
    spec.csPerEpoch = 3;
    spec.queueItems = 5;
    spec.numWorkers = 3;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    EXPECT_EQ(prof.syncCounts.criticalSections, 4u * 4u * 3u);
    EXPECT_EQ(prof.syncCounts.barriers, 4u * 4u);
    EXPECT_EQ(prof.syncCounts.condVars, 10u); // 5 pushes + 5 pops
}

TEST(Profiler, CondBarrierClassifiedAsBarrier)
{
    WorkloadSpec spec;
    spec.numEpochs = 3;
    spec.barrierFlavor = BarrierFlavor::CondVar;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    bool found = false;
    for (const auto &[id, cls] : prof.condVarClasses) {
        if (cls == CondVarClass::BarrierLike)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Profiler, QueueClassifiedAsProducerConsumer)
{
    WorkloadSpec spec;
    spec.numEpochs = 1;
    spec.queueItems = 8;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    bool found = false;
    for (const auto &[id, cls] : prof.condVarClasses) {
        if (cls == CondVarClass::ProducerConsumer)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Profiler, TotalOpsMatchesTrace)
{
    WorkloadSpec spec;
    spec.numEpochs = 3;
    spec.opsPerEpoch = 3000;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    EXPECT_EQ(prof.totalOps(), trace.totalOps());
}

TEST(Profiler, BarrierPopulationExported)
{
    WorkloadSpec spec;
    spec.numEpochs = 2;
    spec.numWorkers = 3;
    spec.mainWorks = true;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    for (const auto &[id, pop] : prof.barrierPopulation)
        EXPECT_EQ(pop, 4u);
    EXPECT_FALSE(prof.barrierPopulation.empty());
}

TEST(Profiler, DeterministicAcrossRuns)
{
    WorkloadSpec spec;
    spec.numEpochs = 3;
    spec.opsPerEpoch = 2000;
    spec.csPerEpoch = 2;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile a = profileWorkload(trace);
    const WorkloadProfile b = profileWorkload(trace);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (size_t t = 0; t < a.threads.size(); ++t) {
        ASSERT_EQ(a.threads[t].epochs.size(), b.threads[t].epochs.size());
        for (size_t e = 0; e < a.threads[t].epochs.size(); ++e) {
            EXPECT_EQ(a.threads[t].epochs[e].numOps,
                      b.threads[t].epochs[e].numOps);
            EXPECT_EQ(a.threads[t].epochs[e].localRd.totalInfinite(),
                      b.threads[t].epochs[e].localRd.totalInfinite());
        }
    }
}

} // namespace
} // namespace rppm

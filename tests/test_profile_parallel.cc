/**
 * @file
 * Differential tests for the parallel epoch-sharded profiler.
 *
 * The contract under test is absolute: profileWorkloadParallel() must
 * produce a profile *bit-identical* to the fused single-pass sweep —
 * same histograms, same micro-traces, same epoch structure, same
 * synchronization classification — for every job count, on every kernel
 * of the workload suite, under custom profiler options, and through the
 * ProfileCache (same key, same serialized bytes, regardless of how many
 * profile workers produced the artifact). Equality is asserted through
 * the deterministic text serializer, the same oracle the fused-vs-legacy
 * tests use.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "profile/profiler.hh"
#include "profile/serialize.hh"
#include "study/profile_cache.hh"
#include "study/source.hh"
#include "trace/columnar.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

std::string
serializeProfileText(const WorkloadProfile &profile)
{
    std::stringstream ss;
    saveProfile(profile, ss);
    return ss.str();
}

std::string
serializeProfileBinary(const WorkloadProfile &profile)
{
    std::stringstream ss;
    saveProfileBinary(profile, ss);
    return ss.str();
}

/** Suite spec scaled down so 26 kernels x several job counts stay fast;
 *  all synchronization structure is preserved. */
WorkloadSpec
scaledSpec(const SuiteEntry &entry, uint64_t divisor = 20)
{
    WorkloadSpec spec = entry.spec;
    spec.opsPerEpoch = std::max<uint64_t>(1, spec.opsPerEpoch / divisor);
    spec.initOps = std::max<uint64_t>(1, spec.initOps / divisor);
    spec.finalOps = std::max<uint64_t>(1, spec.finalOps / divisor);
    spec.itemOps = std::max<uint64_t>(1, spec.itemOps / divisor);
    return spec;
}

/** A structurally rich workload: barriers, critical sections, a
 *  producer-consumer queue, shared data, coherence traffic. */
WorkloadSpec
richSpec(const char *name = "par-test")
{
    WorkloadSpec spec = barrierLoopSpec(4, 5, 2500);
    spec.name = name;
    spec.csPerEpoch = 2;
    spec.queueItems = 6;
    spec.kernel.sharedFrac = 0.25;
    spec.kernel.branchEntropy = 0.1;
    return spec;
}

const unsigned kJobCounts[] = {1, 2, 4, 7};

TEST(ParallelProfiler, BitIdenticalOnEveryKernelForEveryJobCount)
{
    // The tentpole guarantee: on all 26 suite kernels, the parallel
    // engine's profile serializes byte-for-byte identically to the
    // fused sweep's, for every tested job count (including the serial
    // execution of the sharded engine itself, jobs = 1).
    for (const SuiteEntry &entry : fullSuite()) {
        const WorkloadSpec spec = scaledSpec(entry);
        const ColumnarTrace cols =
            ColumnarTrace::fromWorkload(generateWorkload(spec));
        const std::string fused =
            serializeProfileText(profileWorkloadFused(cols));
        for (const unsigned jobs : kJobCounts) {
            ProfilerOptions opts;
            opts.jobs = jobs;
            // EXPECT_TRUE rather than EXPECT_EQ: on failure gtest would
            // try to print two multi-hundred-kB strings.
            EXPECT_TRUE(serializeProfileText(
                            profileWorkloadParallel(cols, opts)) == fused)
                << spec.name << " jobs=" << jobs;
        }
    }
}

TEST(ParallelProfiler, BitIdenticalUnderCustomOptions)
{
    // Options that change profile *content* (sampling policy, quantum,
    // coherence detection) must keep parallel == fused at every job
    // count: the schedule replay honors the quantum, the sharded
    // resolution honors detectInvalidation, the sweep honors the
    // sampling windows.
    ProfilerOptions base;
    base.quantum = 17;
    base.microTraceLength = 64;
    base.microTraceInterval = 500;

    ProfilerOptions noInval = base;
    noInval.detectInvalidation = false;

    ProfilerOptions bigLines = base;
    bigLines.lineBytes = 256;

    const ColumnarTrace cols =
        ColumnarTrace::fromWorkload(generateWorkload(richSpec()));
    for (const ProfilerOptions &proto : {base, noInval, bigLines}) {
        const std::string fused =
            serializeProfileText(profileWorkloadFused(cols, proto));
        for (const unsigned jobs : kJobCounts) {
            ProfilerOptions opts = proto;
            opts.jobs = jobs;
            EXPECT_TRUE(serializeProfileText(
                            profileWorkloadParallel(cols, opts)) == fused)
                << "quantum=" << opts.quantum << " inv="
                << opts.detectInvalidation << " lb=" << opts.lineBytes
                << " jobs=" << jobs;
        }
    }
}

TEST(ParallelProfiler, DispatchRoutesOnJobs)
{
    const ColumnarTrace cols =
        ColumnarTrace::fromWorkload(generateWorkload(richSpec()));
    ProfilerOptions par;
    par.jobs = 4;
    // profileWorkload with jobs != 1 routes to the parallel engine and
    // must still match the default fused output bit for bit.
    EXPECT_TRUE(serializeProfileText(profileWorkload(cols, par)) ==
                serializeProfileText(profileWorkload(cols)));
    // jobs = 0 means "all hardware threads" and must be equivalent too.
    ProfilerOptions all;
    all.jobs = 0;
    EXPECT_TRUE(serializeProfileText(profileWorkload(cols, all)) ==
                serializeProfileText(profileWorkload(cols)));
}

TEST(ParallelProfiler, JobsStayOutOfTheCacheKey)
{
    // "Profile once" must hold across job counts: the cache key carries
    // the options that shape profile content, never the worker count.
    ProfilerOptions a, b, c;
    a.jobs = 1;
    b.jobs = 4;
    c.jobs = 0;
    EXPECT_EQ(profilerOptionsKey(a), profilerOptionsKey(b));
    EXPECT_EQ(profilerOptionsKey(a), profilerOptionsKey(c));

    // Content-shaping options still produce distinct keys.
    ProfilerOptions d;
    d.quantum = 17;
    EXPECT_NE(profilerOptionsKey(a), profilerOptionsKey(d));
}

TEST(ParallelProfiler, CacheArtifactsIdenticalForAnyJobCount)
{
    // A ProfileCache fed by a 4-worker profiler must produce the same
    // serialized artifact — same path (key), same bytes — as one fed by
    // the serial profiler, and a cold cache must *hit* that artifact
    // regardless of the requesting job count.
    const auto dir = std::filesystem::temp_directory_path() /
        "rppm-par-cache-test";
    std::filesystem::remove_all(dir);

    const WorkloadSpec spec = richSpec("par-cache");
    const WorkloadTrace trace = generateWorkload(spec);
    const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);

    ProfilerOptions serial;
    serial.jobs = 1;
    ProfilerOptions par;
    par.jobs = 4;

    ProfileCache cacheA;
    cacheA.setDirectory(dir.string());
    const auto fromSerial = cacheA.getOrCompute(
        spec.name, serial, [&] { return profileWorkload(cols, serial); });
    EXPECT_EQ(cacheA.pathFor(spec.name, serial),
              cacheA.pathFor(spec.name, par));
    std::ifstream artifact(cacheA.pathFor(spec.name, serial),
                           std::ios::binary);
    ASSERT_TRUE(artifact.good());
    std::stringstream artifactBytes;
    artifactBytes << artifact.rdbuf();

    // Fresh cache, same directory, parallel profiler: must be a disk
    // hit (the artifact the serial run wrote serves it) and identical.
    ProfileCache cacheB;
    cacheB.setDirectory(dir.string());
    const auto fromPar = cacheB.getOrCompute(
        spec.name, par, [&] { return profileWorkload(cols, par); });
    EXPECT_EQ(cacheB.stats().diskHits, 1u);
    EXPECT_TRUE(serializeProfileText(*fromSerial) ==
                serializeProfileText(*fromPar));
    EXPECT_TRUE(serializeProfileBinary(*fromSerial) ==
                serializeProfileBinary(*fromPar));

    // And a parallel run into an empty directory writes the same bytes.
    const auto dir2 = std::filesystem::temp_directory_path() /
        "rppm-par-cache-test-2";
    std::filesystem::remove_all(dir2);
    ProfileCache cacheC;
    cacheC.setDirectory(dir2.string());
    cacheC.getOrCompute(spec.name, par,
                        [&] { return profileWorkload(cols, par); });
    std::ifstream artifact2(cacheC.pathFor(spec.name, par),
                            std::ios::binary);
    ASSERT_TRUE(artifact2.good());
    std::stringstream artifactBytes2;
    artifactBytes2 << artifact2.rdbuf();
    EXPECT_TRUE(artifactBytes.str() == artifactBytes2.str());

    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(dir2);
}

TEST(ParallelProfiler, SingleThreadedWorkload)
{
    // Degenerate shape: one thread, no synchronization except the built-in
    // create/join scaffolding; the schedule replay and sharded resolution
    // must still agree with the fused sweep exactly.
    WorkloadSpec spec;
    spec.name = "single";
    spec.numWorkers = 1;
    spec.mainWorks = false;
    spec.numEpochs = 3;
    spec.opsPerEpoch = 4000;
    spec.barrierFlavor = BarrierFlavor::None;
    const ColumnarTrace cols =
        ColumnarTrace::fromWorkload(generateWorkload(spec));
    const std::string fused = serializeProfileText(profileWorkloadFused(cols));
    for (const unsigned jobs : kJobCounts) {
        ProfilerOptions opts;
        opts.jobs = jobs;
        EXPECT_TRUE(serializeProfileText(
                        profileWorkloadParallel(cols, opts)) == fused)
            << "jobs=" << jobs;
    }
}

TEST(ParallelTraceSynthesis, JobCountDoesNotChangeTheTrace)
{
    // generateWorkload(spec, jobs) parallelizes per-thread stream
    // synthesis; the forked RNG streams make the result independent of
    // the worker count, so traces stay bit-reproducible.
    const WorkloadSpec spec = richSpec("par-gen");
    const WorkloadTrace serial = generateWorkload(spec, 1);
    for (const unsigned jobs : {2u, 4u, 7u, 0u}) {
        const WorkloadTrace par = generateWorkload(spec, jobs);
        EXPECT_TRUE(ColumnarTrace::fromWorkload(par) ==
                    ColumnarTrace::fromWorkload(serial))
            << "jobs=" << jobs;
    }
}

TEST(WorkloadSourceConcurrency, ImmutableAfterPublishUnderHammer)
{
    // Regression test for the columnar-view publication race: many
    // threads concurrently demand the trace, the columnar view and the
    // profile of one WorkloadSource. Immutable-after-publish semantics
    // mean every caller sees the same fully-built objects; under
    // -DRPPM_SANITIZE=thread this also proves the publication is
    // data-race-free.
    const WorkloadSpec spec = richSpec("par-source");
    WorkloadSource source(spec);
    ProfileCache cache;
    ProfilerOptions opts;
    opts.jobs = 2; // profile computation itself fans out, too

    constexpr int kHammerThreads = 8;
    std::vector<const WorkloadTrace *> traces(kHammerThreads);
    std::vector<const ColumnarTrace *> columnars(kHammerThreads);
    std::vector<std::shared_ptr<const WorkloadProfile>> profiles(
        kHammerThreads);
    std::vector<std::thread> threads;
    threads.reserve(kHammerThreads);
    for (int i = 0; i < kHammerThreads; ++i) {
        threads.emplace_back([&, i] {
            // Mix the access order so publication is raced from every
            // entry point.
            if (i % 3 == 0) {
                traces[i] = &source.trace();
                columnars[i] = &source.columnar();
            } else if (i % 3 == 1) {
                columnars[i] = &source.columnar();
                traces[i] = &source.trace();
            }
            profiles[i] = source.profile(opts, cache);
            if (i % 3 == 2) {
                traces[i] = &source.trace();
                columnars[i] = &source.columnar();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    for (int i = 1; i < kHammerThreads; ++i) {
        EXPECT_EQ(traces[i], traces[0]);
        EXPECT_EQ(columnars[i], columnars[0]);
        EXPECT_EQ(profiles[i].get(), profiles[0].get());
    }
    EXPECT_EQ(cache.stats().misses, 1u);
}

} // namespace
} // namespace rppm

/**
 * @file
 * Differential tests for the out-of-core streaming profiler.
 *
 * The contract under test is the same absolute one the parallel engine
 * carries: profileWorkloadStreaming() — and its file-backed variant,
 * which never materializes the trace — must produce a profile
 * *bit-identical* to the fused single-pass sweep for every chunk size
 * and every job count, on every kernel of the workload suite. Equality
 * is asserted through the deterministic text serializer. On top of the
 * identity sweep: structural rejection of truncated/corrupt trace
 * files at every prefix length, chunk-size exclusion from the profile
 * cache key, and artifact identity across all three engines.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "profile/profiler.hh"
#include "profile/serialize.hh"
#include "study/profile_cache.hh"
#include "study/source.hh"
#include "trace/columnar.hh"
#include "trace/trace_io.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

std::string
serializeProfileText(const WorkloadProfile &profile)
{
    std::stringstream ss;
    saveProfile(profile, ss);
    return ss.str();
}

/** Suite spec scaled down so 26 kernels x chunk sizes x job counts stay
 *  fast; all synchronization structure is preserved. */
WorkloadSpec
scaledSpec(const SuiteEntry &entry, uint64_t divisor = 20)
{
    WorkloadSpec spec = entry.spec;
    spec.opsPerEpoch = std::max<uint64_t>(1, spec.opsPerEpoch / divisor);
    spec.initOps = std::max<uint64_t>(1, spec.initOps / divisor);
    spec.finalOps = std::max<uint64_t>(1, spec.finalOps / divisor);
    spec.itemOps = std::max<uint64_t>(1, spec.itemOps / divisor);
    return spec;
}

/** A structurally rich workload: barriers, critical sections, a
 *  producer-consumer queue, shared data, coherence traffic. */
WorkloadSpec
richSpec(const char *name = "stream-test")
{
    WorkloadSpec spec = barrierLoopSpec(4, 5, 2500);
    spec.name = name;
    spec.csPerEpoch = 2;
    spec.queueItems = 6;
    spec.kernel.sharedFrac = 0.25;
    spec.kernel.branchEntropy = 0.1;
    return spec;
}

/** Chunk targets: degenerate (every chunk is a single quantum slice),
 *  small (thousands of chunks on suite kernels), and larger than any
 *  test trace (the whole trace is one chunk). */
const uint64_t kChunkSizes[] = {1, 4096, uint64_t{1} << 30};
const unsigned kJobCounts[] = {1, 2, 4};

class TempTraceFile
{
  public:
    explicit TempTraceFile(const ColumnarTrace &trace)
        : path_(std::filesystem::temp_directory_path() /
                ("rppm-stream-test-" + trace.name + ".rppmtrc"))
    {
        saveTraceToFile(trace, path_.string());
    }

    ~TempTraceFile()
    {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }

    const std::string path() const { return path_.string(); }

  private:
    std::filesystem::path path_;
};

TEST(StreamingProfiler, BitIdenticalOnEveryKernelChunkSizeAndJobCount)
{
    // The tentpole guarantee: on all 26 suite kernels, the streaming
    // engine's profile serializes byte-for-byte identically to the fused
    // sweep's, for every (chunk size, job count) combination.
    for (const SuiteEntry &entry : fullSuite()) {
        const WorkloadSpec spec = scaledSpec(entry);
        const ColumnarTrace cols =
            ColumnarTrace::fromWorkload(generateWorkload(spec));
        const std::string fused =
            serializeProfileText(profileWorkloadFused(cols));
        for (const uint64_t chunk : kChunkSizes) {
            for (const unsigned jobs : kJobCounts) {
                ProfilerOptions opts;
                opts.streamChunkRecords = chunk;
                opts.jobs = jobs;
                // EXPECT_TRUE rather than EXPECT_EQ: on failure gtest
                // would try to print two multi-hundred-kB strings.
                EXPECT_TRUE(serializeProfileText(profileWorkloadStreaming(
                                cols, opts)) == fused)
                    << spec.name << " chunk=" << chunk
                    << " jobs=" << jobs;
            }
        }
    }
}

TEST(StreamingProfiler, FileBackedBitIdentical)
{
    // The out-of-core path: serialize the trace, profile it straight
    // from the file through mapped chunk windows, and require the exact
    // fused bytes — across chunk sizes that force many windows per run.
    const ColumnarTrace cols =
        ColumnarTrace::fromWorkload(generateWorkload(richSpec()));
    const TempTraceFile file(cols);
    const std::string fused =
        serializeProfileText(profileWorkloadFused(cols));
    for (const uint64_t chunk : kChunkSizes) {
        for (const unsigned jobs : kJobCounts) {
            ProfilerOptions opts;
            opts.streamChunkRecords = chunk;
            opts.jobs = jobs;
            EXPECT_TRUE(serializeProfileText(profileWorkloadStreamingFile(
                            file.path(), opts)) == fused)
                << "chunk=" << chunk << " jobs=" << jobs;
        }
    }
}

TEST(StreamingProfiler, BitIdenticalUnderCustomOptions)
{
    // Content-shaping options (sampling policy, quantum, coherence
    // detection, line size) must keep streaming == fused for small
    // chunks, where every epoch spans many chunk stitches.
    ProfilerOptions base;
    base.quantum = 17;
    base.microTraceLength = 64;
    base.microTraceInterval = 500;

    ProfilerOptions noInval = base;
    noInval.detectInvalidation = false;

    ProfilerOptions bigLines = base;
    bigLines.lineBytes = 256;

    const ColumnarTrace cols =
        ColumnarTrace::fromWorkload(generateWorkload(richSpec()));
    for (const ProfilerOptions &proto : {base, noInval, bigLines}) {
        const std::string fused =
            serializeProfileText(profileWorkloadFused(cols, proto));
        for (const uint64_t chunk : {uint64_t{1}, uint64_t{4096}}) {
            ProfilerOptions opts = proto;
            opts.streamChunkRecords = chunk;
            opts.jobs = 3;
            EXPECT_TRUE(serializeProfileText(
                            profileWorkloadStreaming(cols, opts)) == fused)
                << "quantum=" << opts.quantum << " inv="
                << opts.detectInvalidation << " lb=" << opts.lineBytes
                << " chunk=" << chunk;
        }
    }
}

TEST(StreamingProfiler, DispatchRoutesOnStreamChunkRecords)
{
    const ColumnarTrace cols =
        ColumnarTrace::fromWorkload(generateWorkload(richSpec()));
    ProfilerOptions stream;
    stream.streamChunkRecords = 2048;
    stream.jobs = 4;
    // profileWorkload with streamChunkRecords > 0 routes to the
    // streaming engine and must still match the default fused output.
    EXPECT_TRUE(serializeProfileText(profileWorkload(cols, stream)) ==
                serializeProfileText(profileWorkload(cols)));
}

TEST(StreamingProfiler, SingleThreadedWorkload)
{
    // Degenerate shape: one thread, no synchronization beyond the
    // create/join scaffolding — every chunk edge is a bare quantum
    // boundary inside one long epoch.
    WorkloadSpec spec;
    spec.name = "single";
    spec.numWorkers = 1;
    spec.mainWorks = false;
    spec.numEpochs = 3;
    spec.opsPerEpoch = 4000;
    spec.barrierFlavor = BarrierFlavor::None;
    const ColumnarTrace cols =
        ColumnarTrace::fromWorkload(generateWorkload(spec));
    const std::string fused =
        serializeProfileText(profileWorkloadFused(cols));
    for (const uint64_t chunk : kChunkSizes) {
        ProfilerOptions opts;
        opts.streamChunkRecords = chunk;
        opts.jobs = 2;
        EXPECT_TRUE(serializeProfileText(
                        profileWorkloadStreaming(cols, opts)) == fused)
            << "chunk=" << chunk;
    }
}

TEST(StreamingProfiler, TruncatedFileRejectedAtEveryPrefix)
{
    // An RPPMTRC cut off anywhere — mid-header, mid-column-header,
    // mid-payload, mid-final-padding — must be rejected up front by the
    // structural index with the loaders' exception type, never half
    // profiled. (The streaming reader validates the whole container
    // before any chunk work starts, so "mid-chunk" truncation cannot
    // exist: it is caught here.)
    const ColumnarTrace cols = ColumnarTrace::fromWorkload(
        generateWorkload(scaledSpec(fullSuite().front(), 100)));
    std::stringstream ss;
    saveTrace(cols, ss);
    const std::string whole = ss.str();

    const auto path = std::filesystem::temp_directory_path() /
        "rppm-stream-truncated.rppmtrc";
    ProfilerOptions opts;
    opts.streamChunkRecords = 64;

    // Step through prefix lengths densely near the start (header and
    // first column blocks) and coarsely through the payloads.
    for (size_t len = 0; len < whole.size();
         len += (len < 256 ? 1 : whole.size() / 97 + 1)) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(whole.data(), static_cast<std::streamsize>(len));
        os.close();
        EXPECT_THROW(profileWorkloadStreamingFile(path.string(), opts),
                     std::invalid_argument)
            << "prefix=" << len;
    }

    // The untruncated file profiles fine (sanity check of the fixture).
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(whole.data(), static_cast<std::streamsize>(whole.size()));
    os.close();
    EXPECT_NO_THROW(profileWorkloadStreamingFile(path.string(), opts));

    std::error_code ec;
    std::filesystem::remove(path, ec);
}

TEST(StreamingProfiler, FileBackedWorkloadSource)
{
    // A WorkloadSource registered by trace path: construction indexes
    // the container (picking up the embedded name), profile() with an
    // explicit chunk size streams straight from the file, and the
    // result matches an in-memory source bit for bit.
    const ColumnarTrace cols =
        ColumnarTrace::fromWorkload(generateWorkload(richSpec()));
    const TempTraceFile file(cols);

    const WorkloadSource src = WorkloadSource::fromTraceFile(file.path());
    EXPECT_EQ(src.name(), cols.name);
    EXPECT_TRUE(src.hasTrace());

    ProfilerOptions stream;
    stream.streamChunkRecords = 2048;
    stream.jobs = 2;
    ProfileCache cache;
    const auto streamed = src.profile(stream, cache);
    EXPECT_TRUE(serializeProfileText(*streamed) ==
                serializeProfileText(profileWorkloadFused(cols)));

    // Consumers that need the in-memory views still get them (lazily,
    // as a zero-copy mmap of the same file).
    EXPECT_TRUE(src.columnar() == cols);

    // A malformed path fails at registration, not at first profile.
    EXPECT_THROW(WorkloadSource::fromTraceFile("/nonexistent.rppmtrc"),
                 std::exception);
}

TEST(StreamingProfiler, ChunkSizeStaysOutOfTheCacheKey)
{
    // "Profile once" must hold across engines: the cache key carries
    // options that shape profile content; the chunk size (like the job
    // count) is pure execution policy.
    ProfilerOptions a, b, c;
    b.streamChunkRecords = 4096;
    c.streamChunkRecords = kDefaultStreamChunkRecords;
    c.jobs = 8;
    EXPECT_EQ(profilerOptionsKey(a), profilerOptionsKey(b));
    EXPECT_EQ(profilerOptionsKey(a), profilerOptionsKey(c));
}

TEST(StreamingProfiler, CacheArtifactIdenticalAcrossEngines)
{
    // A ProfileCache fed by the streaming engine must produce the same
    // artifact — same path (key), same bytes — as one fed by the fused
    // engine, and the fused artifact must serve streaming requests.
    const auto dir = std::filesystem::temp_directory_path() /
        "rppm-stream-cache-test";
    std::filesystem::remove_all(dir);

    const WorkloadSpec spec = richSpec("stream-cache");
    const ColumnarTrace cols =
        ColumnarTrace::fromWorkload(generateWorkload(spec));

    ProfilerOptions fused;
    ProfilerOptions stream;
    stream.streamChunkRecords = 2048;
    stream.jobs = 4;

    ProfileCache cacheA;
    cacheA.setDirectory(dir.string());
    const auto fromFused = cacheA.getOrCompute(
        spec.name, fused, [&] { return profileWorkload(cols, fused); });
    EXPECT_EQ(cacheA.pathFor(spec.name, fused),
              cacheA.pathFor(spec.name, stream));

    // Fresh cache, same directory, streaming request: disk hit off the
    // fused artifact, identical content.
    ProfileCache cacheB;
    cacheB.setDirectory(dir.string());
    const auto fromStream = cacheB.getOrCompute(
        spec.name, stream, [&] { return profileWorkload(cols, stream); });
    EXPECT_EQ(cacheB.stats().diskHits, 1u);
    EXPECT_TRUE(serializeProfileText(*fromFused) ==
                serializeProfileText(*fromStream));

    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace rppm

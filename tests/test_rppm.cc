/**
 * @file
 * Unit tests for src/rppm: the ILP model, branch/memory/MLP components,
 * Eq. 1 evaluation, Algorithm-2 symbolic execution, the top-level
 * predictor, the MAIN/CRIT baselines and the DSE driver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "profile/profiler.hh"
#include "rppm/baselines.hh"
#include "rppm/dse.hh"
#include "rppm/ilp_model.hh"
#include "rppm/mlp_model.hh"
#include "rppm/predictor.hh"
#include "rppm/sync_model.hh"
#include "rppm/thread_model.hh"
#include "sim/simulator.hh"
#include "trace/trace_builder.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

LoadLatencyFn
fixedLatency(double lat)
{
    return [lat](const MicroTraceOp &) { return lat; };
}

MicroTrace
makeMicroTrace(size_t n, OpClass cls, uint16_t dep)
{
    MicroTrace mt;
    for (size_t i = 0; i < n; ++i) {
        MicroTraceOp op;
        op.op = cls;
        op.dep1 = dep;
        mt.ops.push_back(op);
    }
    return mt;
}

// ------------------------------------------------------------ ILP model ---

TEST(IlpModel, IndependentOpsReachWidth)
{
    const MicroTrace mt = makeMicroTrace(1000, OpClass::IntAlu, 0);
    const IlpResult r =
        replayMicroTrace(mt, baseConfig().core(), fixedLatency(3.0));
    EXPECT_NEAR(r.ipc, 4.0, 0.3);
}

TEST(IlpModel, SerialChainIpcOne)
{
    const MicroTrace mt = makeMicroTrace(1000, OpClass::IntAlu, 1);
    const IlpResult r =
        replayMicroTrace(mt, baseConfig().core(), fixedLatency(3.0));
    EXPECT_NEAR(r.ipc, 1.0, 0.1);
}

TEST(IlpModel, WiderCoreHigherIpc)
{
    MicroTrace mt;
    // Moderate ILP: dependence distance 3.
    for (int i = 0; i < 1000; ++i) {
        MicroTraceOp op;
        op.op = OpClass::IntAlu;
        op.dep1 = i % 2 ? 3 : 0;
        mt.ops.push_back(op);
    }
    CoreConfig narrow = baseConfig().core();
    narrow.dispatchWidth = 2;
    CoreConfig wide = baseConfig().core();
    wide.dispatchWidth = 6;
    const double ipc_narrow =
        replayMicroTrace(mt, narrow, fixedLatency(3.0)).ipc;
    const double ipc_wide =
        replayMicroTrace(mt, wide, fixedLatency(3.0)).ipc;
    EXPECT_GT(ipc_wide, ipc_narrow);
}

TEST(IlpModel, MemoryLatencyLowersIpc)
{
    MicroTrace mt;
    for (int i = 0; i < 1000; ++i) {
        MicroTraceOp op;
        op.op = i % 4 == 0 ? OpClass::Load : OpClass::IntAlu;
        op.dep1 = 1;
        mt.ops.push_back(op);
    }
    const CoreConfig core = baseConfig().core();
    const double fast = replayMicroTrace(mt, core, fixedLatency(3.0)).ipc;
    const double slow = replayMicroTrace(mt, core, fixedLatency(40.0)).ipc;
    EXPECT_GT(fast, slow * 2.0);
}

TEST(IlpModel, IpcNeverExceedsWidth)
{
    const MicroTrace mt = makeMicroTrace(2000, OpClass::IntAlu, 0);
    for (uint32_t width : {2u, 4u, 6u}) {
        CoreConfig core = baseConfig().core();
        core.dispatchWidth = width;
        const double ipc = replayMicroTrace(mt, core, fixedLatency(3.0)).ipc;
        EXPECT_LE(ipc, static_cast<double>(width) + 1e-9);
    }
}

TEST(IlpModel, BranchResolutionPositiveWithBranches)
{
    MicroTrace mt;
    for (int i = 0; i < 500; ++i) {
        MicroTraceOp op;
        op.op = i % 10 == 0 ? OpClass::Branch : OpClass::IntAlu;
        op.dep1 = 2;
        mt.ops.push_back(op);
    }
    const IlpResult r =
        replayMicroTrace(mt, baseConfig().core(), fixedLatency(3.0));
    EXPECT_GT(r.branchResolution, 0.0);
}

TEST(IlpModel, EmptyTraceSafe)
{
    const MicroTrace mt;
    const IlpResult r =
        replayMicroTrace(mt, baseConfig().core(), fixedLatency(3.0));
    EXPECT_GT(r.ipc, 0.0);
}

TEST(IlpModel, EpochAggregatesMicroTraces)
{
    EpochProfile epoch;
    epoch.numOps = 2000;
    epoch.microTraces.push_back(makeMicroTrace(1000, OpClass::IntAlu, 0));
    epoch.microTraces.push_back(makeMicroTrace(1000, OpClass::IntAlu, 1));
    const IlpResult r =
        epochIlp(epoch, baseConfig().core(), fixedLatency(3.0));
    // Harmonic-style mean of ~4 and ~1: 2000 / (250 + 1000) = 1.6.
    EXPECT_GT(r.ipc, 1.2);
    EXPECT_LT(r.ipc, 2.2);
}

// ------------------------------------------------------------ MLP model ---

TEST(MlpModel, NoLoadsGivesOne)
{
    EpochProfile epoch;
    epoch.numOps = 1000;
    EXPECT_DOUBLE_EQ(epochMlp(epoch, baseConfig().core(), 0.5), 1.0);
}

TEST(MlpModel, DenseMissesGiveHighMlp)
{
    EpochProfile epoch;
    epoch.numOps = 1000;
    epoch.numLoads = 250;
    for (int i = 0; i < 250; ++i)
        epoch.loadGap.add(3);
    const double mlp = epochMlp(epoch, baseConfig().core(), 1.0);
    EXPECT_GT(mlp, 4.0);
}

TEST(MlpModel, PointerChasingKillsMlp)
{
    EpochProfile epoch;
    epoch.numOps = 1000;
    epoch.numLoads = 250;
    epoch.loadsDependingOnLoad = 250; // fully serialized
    for (int i = 0; i < 250; ++i)
        epoch.loadGap.add(3);
    EXPECT_DOUBLE_EQ(epochMlp(epoch, baseConfig().core(), 1.0), 1.0);
}

TEST(MlpModel, CappedByMshrs)
{
    EpochProfile epoch;
    epoch.numOps = 10000;
    epoch.numLoads = 5000;
    for (int i = 0; i < 5000; ++i)
        epoch.loadGap.add(1);
    CoreConfig core = baseConfig().core();
    core.mshrs = 4;
    EXPECT_LE(epochMlp(epoch, core, 1.0), 4.0);
}

TEST(MlpModel, GrowsWithRob)
{
    EpochProfile epoch;
    epoch.numOps = 10000;
    epoch.numLoads = 1000;
    for (int i = 0; i < 1000; ++i)
        epoch.loadGap.add(9);
    CoreConfig small = baseConfig().core();
    small.robSize = 32;
    CoreConfig big = baseConfig().core();
    big.robSize = 288;
    EXPECT_GT(epochMlp(epoch, big, 0.5), epochMlp(epoch, small, 0.5));
}

// ------------------------------------------------- Eq. 1 / thread model ---

/** Profile a simple single-thread kernel and return its profile. */
WorkloadProfile
profileSimpleThread(uint64_t ops, double load_frac, uint64_t ws_bytes)
{
    WorkloadTrace trace;
    trace.name = "eq1";
    trace.threads.resize(1);
    ThreadTraceBuilder b(trace.threads[0]);
    uint64_t addr_cursor = 0;
    for (uint64_t i = 0; i < ops; ++i) {
        if (static_cast<double>(i % 100) < load_frac * 100.0) {
            b.load(0x100000 + addr_cursor, 4 * (i % 256));
            addr_cursor = (addr_cursor + 64) % ws_bytes;
        } else {
            b.op(OpClass::IntAlu, 4 * (i % 256), 2);
        }
    }
    // Dense micro-trace sampling so the cold-start burst does not skew
    // the extrapolation.
    ProfilerOptions opts;
    opts.microTraceInterval = 4000;
    return profileWorkload(trace, opts);
}

TEST(ThreadModel, ComponentsNonNegative)
{
    const WorkloadProfile prof = profileSimpleThread(50000, 0.25, 8 << 20);
    const EpochPrediction pred =
        predictEpoch(prof.threads[0].epochs[0], baseConfig());
    for (size_t c = 0; c < kNumCpiComponents; ++c)
        EXPECT_GE(pred.stack.cycles[c], 0.0) << c;
    EXPECT_GT(pred.cycles, 0.0);
}

TEST(ThreadModel, BigWorkingSetCostsDramCycles)
{
    // Streaming a working set far beyond the LLC: DRAM component must
    // dominate a compute-only baseline.
    const WorkloadProfile big = profileSimpleThread(50000, 0.3, 64 << 20);
    const WorkloadProfile small = profileSimpleThread(50000, 0.3, 16 << 10);
    const EpochPrediction pred_big =
        predictEpoch(big.threads[0].epochs[0], baseConfig());
    const EpochPrediction pred_small =
        predictEpoch(small.threads[0].epochs[0], baseConfig());
    EXPECT_GT(pred_big.stack[CpiComponent::MemDram], 0.0);
    EXPECT_GT(pred_big.cycles, pred_small.cycles * 1.5);
    // The small working set still pays cold misses, but far fewer DRAM
    // cycles than the streaming one.
    EXPECT_LT(pred_small.stack[CpiComponent::MemDram],
              0.2 * pred_big.stack[CpiComponent::MemDram]);
}

TEST(ThreadModel, PredictionScalesWithOps)
{
    const WorkloadProfile small = profileSimpleThread(20000, 0.2, 1 << 20);
    const WorkloadProfile big = profileSimpleThread(80000, 0.2, 1 << 20);
    const double c_small =
        predictThread(small.threads[0], baseConfig()).activeCycles;
    const double c_big =
        predictThread(big.threads[0], baseConfig()).activeCycles;
    EXPECT_NEAR(c_big / c_small, 4.0, 0.8);
}

TEST(ThreadModel, EmptyEpochZeroCycles)
{
    EpochProfile epoch;
    const EpochPrediction pred = predictEpoch(epoch, baseConfig());
    EXPECT_DOUBLE_EQ(pred.cycles, 0.0);
}

// ------------------------------------------------- Algorithm 2 (sync) ---

/** Hand-build a profile: threads with given epoch cycle budgets. */
WorkloadProfile
handProfile(const std::vector<std::vector<
                std::tuple<double, SyncType, uint32_t>>> &threads,
            std::unordered_map<uint32_t, uint32_t> barrier_pop)
{
    WorkloadProfile prof;
    prof.name = "hand";
    prof.numThreads = static_cast<uint32_t>(threads.size());
    prof.barrierPopulation = std::move(barrier_pop);
    for (const auto &epochs : threads) {
        ThreadProfile tp;
        for (const auto &[cycles, type, arg] : epochs) {
            EpochProfile ep;
            // Encode the intended duration as numOps with a known IPC=1:
            // we bypass Eq. 1 by building ThreadPredictions directly.
            ep.numOps = static_cast<uint64_t>(cycles);
            ep.endType = type;
            ep.endArg = arg;
            tp.epochs.push_back(std::move(ep));
        }
        prof.threads.push_back(std::move(tp));
    }
    return prof;
}

/** ThreadPredictions where each epoch takes exactly numOps cycles. */
std::vector<ThreadPrediction>
unitPredictions(const WorkloadProfile &prof)
{
    std::vector<ThreadPrediction> preds;
    for (const auto &tp : prof.threads) {
        ThreadPrediction pred;
        for (const auto &ep : tp.epochs) {
            EpochPrediction epred;
            epred.cycles = static_cast<double>(ep.numOps);
            pred.epochs.push_back(epred);
            pred.activeCycles += epred.cycles;
        }
        preds.push_back(std::move(pred));
    }
    return preds;
}

TEST(SyncModel, BarrierWaitsForSlowest)
{
    // Main creates one worker; both do an epoch (100 vs 300), barrier,
    // then another epoch (50 each); main joins worker.
    using E = std::tuple<double, SyncType, uint32_t>;
    const std::vector<std::vector<E>> threads = {
        {E{10, SyncType::ThreadCreate, 1}, E{100, SyncType::BarrierWait, 7},
         E{50, SyncType::ThreadJoin, 1}, E{5, SyncType::None, 0}},
        {E{300, SyncType::BarrierWait, 7}, E{50, SyncType::None, 0}},
    };
    const WorkloadProfile prof = handProfile(threads, {{7, 2}});
    SyncModelOptions opts;
    opts.syncOpCost = 0.0;
    const SyncModelResult res =
        runSyncModel(prof, unitPredictions(prof), opts);
    // Worker: starts at 10, runs 300 => barrier at 310, epoch 50 => 360.
    // Main: 10 + 100 = 110 at barrier, waits until 310, + 50 = 360,
    // join returns immediately, + 5 => 365.
    EXPECT_NEAR(res.threadFinish[1], 360.0, 1e-9);
    EXPECT_NEAR(res.totalCycles, 365.0, 1e-9);
    EXPECT_NEAR(res.threadIdle[0], 200.0, 1e-9);
}

TEST(SyncModel, CriticalSectionsSerialize)
{
    // Two workers each: epoch 10, lock, cs 100, unlock, epoch 0.
    using E = std::tuple<double, SyncType, uint32_t>;
    const std::vector<std::vector<E>> threads = {
        {E{0, SyncType::ThreadCreate, 1}, E{0, SyncType::ThreadCreate, 2},
         E{0, SyncType::ThreadJoin, 1}, E{0, SyncType::ThreadJoin, 2},
         E{0, SyncType::None, 0}},
        {E{10, SyncType::MutexLock, 4}, E{100, SyncType::MutexUnlock, 4},
         E{0, SyncType::None, 0}},
        {E{10, SyncType::MutexLock, 4}, E{100, SyncType::MutexUnlock, 4},
         E{0, SyncType::None, 0}},
    };
    const WorkloadProfile prof = handProfile(threads, {});
    SyncModelOptions opts;
    opts.syncOpCost = 0.0;
    const SyncModelResult res =
        runSyncModel(prof, unitPredictions(prof), opts);
    // One worker finishes at 110; the other waits for the lock until 110
    // and finishes at 210.
    const double finish_max =
        std::max(res.threadFinish[1], res.threadFinish[2]);
    EXPECT_NEAR(finish_max, 210.0, 1e-9);
    EXPECT_NEAR(res.totalCycles, 210.0, 1e-9);
}

TEST(SyncModel, ProducerConsumerThrottlesConsumer)
{
    using E = std::tuple<double, SyncType, uint32_t>;
    // Producer pushes 3 items at t=100, 200, 300; consumer pops with
    // 10-cycle handling.
    const std::vector<std::vector<E>> threads = {
        {E{0, SyncType::ThreadCreate, 1},
         E{100, SyncType::QueuePush, 5}, E{100, SyncType::QueuePush, 5},
         E{100, SyncType::QueuePush, 5},
         E{0, SyncType::ThreadJoin, 1}, E{0, SyncType::None, 0}},
        {E{0, SyncType::QueuePop, 5}, E{10, SyncType::QueuePop, 5},
         E{10, SyncType::QueuePop, 5}, E{10, SyncType::None, 0}},
    };
    const WorkloadProfile prof = handProfile(threads, {});
    SyncModelOptions opts;
    opts.syncOpCost = 0.0;
    const SyncModelResult res =
        runSyncModel(prof, unitPredictions(prof), opts);
    // Consumer pops at 100, 200, 300 (+10 handling each) => finish 310.
    EXPECT_NEAR(res.threadFinish[1], 310.0, 1e-9);
    EXPECT_GT(res.threadIdle[1], 0.0);
}

TEST(SyncModel, SyncOpCostCharged)
{
    using E = std::tuple<double, SyncType, uint32_t>;
    const std::vector<std::vector<E>> threads = {
        {E{0, SyncType::ThreadCreate, 1}, E{0, SyncType::ThreadJoin, 1},
         E{0, SyncType::None, 0}},
        {E{100, SyncType::None, 0}},
    };
    const WorkloadProfile prof = handProfile(threads, {});
    SyncModelOptions opts;
    opts.syncOpCost = 25.0;
    const SyncModelResult res =
        runSyncModel(prof, unitPredictions(prof), opts);
    // Main: create (25) + join (25), waits for worker started at 25
    // finishing at 125 => 125 then zero-length final epoch.
    EXPECT_NEAR(res.totalCycles, 125.0, 1e-9);
}

TEST(SyncModel, ActivityIntervalsProduced)
{
    using E = std::tuple<double, SyncType, uint32_t>;
    const std::vector<std::vector<E>> threads = {
        {E{10, SyncType::ThreadCreate, 1}, E{20, SyncType::ThreadJoin, 1},
         E{5, SyncType::None, 0}},
        {E{500, SyncType::None, 0}},
    };
    const WorkloadProfile prof = handProfile(threads, {});
    SyncModelOptions opts;
    opts.syncOpCost = 0.0;
    const SyncModelResult res =
        runSyncModel(prof, unitPredictions(prof), opts);
    EXPECT_FALSE(res.activity[0].empty());
    EXPECT_FALSE(res.activity[1].empty());
}

// -------------------------------------------------- end-to-end predict ---

TEST(Predictor, PredictsBalancedBarrierWorkload)
{
    // Enough epochs that the cold start (where Eq. 1's additive
    // components overlap heavily in the simulator) is amortized.
    WorkloadSpec spec = barrierLoopSpec(4, 40, 3000);
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    const MulticoreConfig cfg = baseConfig();
    const SimResult sim = simulate(trace, cfg);
    const RppmPrediction pred = predict(prof, cfg);
    EXPECT_NEAR(pred.totalCycles / sim.totalCycles, 1.0, 0.35);
}

TEST(Predictor, FrequencyOnlyChangesSeconds)
{
    WorkloadSpec spec = barrierLoopSpec(2, 4, 2000);
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    MulticoreConfig fast = baseConfig();
    fast.eachCore([](CoreConfig &c) { c.frequencyGHz = 5.0; });
    const RppmPrediction base = predict(prof, baseConfig());
    const RppmPrediction faster = predict(prof, fast);
    EXPECT_NEAR(base.totalCycles, faster.totalCycles, 1e-6);
    EXPECT_NEAR(faster.totalSeconds * 2.0, base.totalSeconds, 1e-12);
}

/**
 * A barrier loop whose kernel is L1-resident pure compute: the active-
 * time model is accurate there, so tests exercising the synchronization
 * model are not polluted by cold-start memory effects.
 */
WorkloadSpec
cleanComputeSpec(uint32_t threads, uint32_t epochs, uint64_t ops)
{
    WorkloadSpec spec = barrierLoopSpec(threads, epochs, ops);
    spec.kernel.privateBytes = 8 << 10;
    spec.kernel.hotLines = 16;
    spec.kernel.reuseFrac = 0.8;
    spec.kernel.randomFrac = 0.0;
    spec.kernel.fracLoad = 0.1;
    spec.kernel.fracStore = 0.05;
    spec.kernel.codeFootprint = 512;
    spec.kernel.branchEntropy = 0.005;
    spec.kernel.chainFrac = 0.2;
    return spec;
}

TEST(Predictor, CpiStackComparableToSim)
{
    WorkloadSpec spec = cleanComputeSpec(4, 40, 4000);
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    const MulticoreConfig cfg = baseConfig();
    const SimResult sim = simulate(trace, cfg);
    const RppmPrediction pred = predict(prof, cfg);
    const CpiStack sim_stack = sim.averageCpiStack();
    const CpiStack pred_stack = pred.averageCpiStack();
    // Total CPI within 35%.
    EXPECT_NEAR(pred_stack.total() / sim_stack.total(), 1.0, 0.35);
}

TEST(Predictor, BottlegraphSharesSumToOne)
{
    WorkloadSpec spec = barrierLoopSpec(4, 5, 2000);
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    const RppmPrediction pred = predict(prof, baseConfig());
    const Bottlegraph graph = pred.bottlegraph();
    double sum = 0.0;
    for (const auto &box : graph.boxes)
        sum += box.height;
    // Heights sum to the busy-union <= total predicted time.
    EXPECT_GT(sum, 0.5 * pred.totalCycles);
    EXPECT_LE(sum, pred.totalCycles * 1.01);
}

// -------------------------------------------------------- MAIN / CRIT ---

TEST(Baselines, MainUnderestimatesWhenMainIdle)
{
    // Parsec-style pool: main does almost nothing.
    WorkloadSpec spec;
    spec.numWorkers = 4;
    spec.mainWorks = false;
    spec.numEpochs = 2;
    spec.opsPerEpoch = 20000;
    spec.initOps = 500;
    spec.finalOps = 100;
    spec.mainBookkeepingOps = 200;
    spec.barrierFlavor = BarrierFlavor::None;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    const MulticoreConfig cfg = baseConfig();
    const SimResult sim = simulate(trace, cfg);
    const double main_pred = predictMain(prof, cfg);
    const double crit_pred = predictCrit(prof, cfg);
    // MAIN misses all the worker time.
    EXPECT_LT(main_pred, 0.5 * sim.totalCycles);
    // CRIT at least captures the busiest worker.
    EXPECT_GT(crit_pred, main_pred * 2.0);
}

TEST(Baselines, CritLowerBoundedByRppmActiveTime)
{
    WorkloadSpec spec = barrierLoopSpec(4, 6, 2000);
    spec.epochJitter = 0.3;
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    const MulticoreConfig cfg = baseConfig();
    const double crit = predictCrit(prof, cfg);
    const RppmPrediction rppm = predict(prof, cfg);
    // RPPM adds idle time on top of per-thread active time, so its total
    // is >= the critical thread's active-only prediction.
    EXPECT_GE(rppm.totalCycles * 1.0001, crit);
}

// ---------------------------------------------------------------- DSE ---

TEST(Dse, SelectsTrueOptimumWhenPredictionsPerfect)
{
    WorkloadProfile prof;
    prof.name = "dse";
    prof.numThreads = 1;
    prof.threads.resize(1);
    EpochProfile ep;
    ep.numOps = 1000;
    prof.threads[0].epochs.push_back(std::move(ep));

    DseResult res;
    res.workload = "synthetic";
    res.predictedSeconds = {3.0, 2.0, 2.5};
    res.simulatedSeconds = {3.1, 2.1, 2.6};
    EXPECT_EQ(res.predictedBest(), 1u);
    EXPECT_EQ(res.trueBest(), 1u);
    EXPECT_DOUBLE_EQ(res.deficiency(0.0), 0.0);
}

TEST(Dse, DeficiencyWhenMispredicted)
{
    DseResult res;
    res.predictedSeconds = {2.0, 2.4};
    res.simulatedSeconds = {2.2, 2.0}; // true optimum is point 1
    EXPECT_EQ(res.predictedBest(), 0u);
    EXPECT_EQ(res.trueBest(), 1u);
    EXPECT_NEAR(res.deficiency(0.0), 0.1, 1e-9);
    // Relaxing the bound to 20% brings point 1 into the candidate set.
    EXPECT_NEAR(res.deficiency(0.2), 0.0, 1e-9);
    EXPECT_EQ(res.candidates(0.2).size(), 2u);
}

TEST(Dse, CandidatesMonotoneInBound)
{
    DseResult res;
    res.predictedSeconds = {1.0, 1.005, 1.02, 1.04, 1.5};
    res.simulatedSeconds = {1.0, 1.0, 1.0, 1.0, 1.0};
    EXPECT_EQ(res.candidates(0.0).size(), 1u);
    EXPECT_EQ(res.candidates(0.01).size(), 2u);
    EXPECT_EQ(res.candidates(0.03).size(), 3u);
    EXPECT_EQ(res.candidates(0.05).size(), 4u);
}

TEST(Dse, ExploreUsesOneProfileForAllPoints)
{
    WorkloadSpec spec = barrierLoopSpec(2, 3, 1500);
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile prof = profileWorkload(trace);
    const auto configs = tableIvConfigs();
    std::vector<double> sim_seconds;
    for (const auto &cfg : configs)
        sim_seconds.push_back(simulate(trace, cfg).totalSeconds);
    const DseResult res = exploreDesignSpace(prof, configs, sim_seconds);
    EXPECT_EQ(res.predictedSeconds.size(), 5u);
    for (double s : res.predictedSeconds)
        EXPECT_GT(s, 0.0);
    // Deficiency is finite and small for this trivial workload.
    EXPECT_LT(res.deficiency(0.05), 0.5);
}

TEST(Dse, MismatchedInputsRejected)
{
    WorkloadProfile prof;
    prof.numThreads = 1;
    prof.threads.resize(1);
    EXPECT_THROW(exploreDesignSpace(prof, tableIvConfigs(), {1.0}),
                 std::invalid_argument);
}

} // namespace
} // namespace rppm

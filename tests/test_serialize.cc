/**
 * @file
 * Tests for profile serialization: exact round-tripping of everything
 * the model consumes, error handling on malformed input, and the key
 * property that a reloaded profile yields bit-identical predictions.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "profile/profiler.hh"
#include "profile/serialize.hh"
#include "rppm/predictor.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

WorkloadProfile
sampleProfile()
{
    WorkloadSpec spec = barrierLoopSpec(3, 4, 2500);
    spec.csPerEpoch = 2;
    spec.queueItems = 5;
    spec.kernel.sharedFrac = 0.2;
    spec.kernel.branchEntropy = 0.1;
    return profileWorkload(generateWorkload(spec));
}

WorkloadProfile
roundTrip(const WorkloadProfile &profile)
{
    std::stringstream ss;
    saveProfile(profile, ss);
    return loadProfile(ss);
}

TEST(Serialize, RoundTripPreservesStructure)
{
    const WorkloadProfile original = sampleProfile();
    const WorkloadProfile copy = roundTrip(original);

    EXPECT_EQ(copy.name, original.name);
    EXPECT_EQ(copy.numThreads, original.numThreads);
    ASSERT_EQ(copy.threads.size(), original.threads.size());
    EXPECT_EQ(copy.barrierPopulation, original.barrierPopulation);
    EXPECT_EQ(copy.condVarClasses.size(), original.condVarClasses.size());
    EXPECT_EQ(copy.syncCounts.criticalSections,
              original.syncCounts.criticalSections);
    EXPECT_EQ(copy.syncCounts.barriers, original.syncCounts.barriers);
    EXPECT_EQ(copy.syncCounts.condVars, original.syncCounts.condVars);
}

TEST(Serialize, RoundTripPreservesEpochs)
{
    const WorkloadProfile original = sampleProfile();
    const WorkloadProfile copy = roundTrip(original);
    for (size_t t = 0; t < original.threads.size(); ++t) {
        ASSERT_EQ(copy.threads[t].epochs.size(),
                  original.threads[t].epochs.size()) << t;
        for (size_t e = 0; e < original.threads[t].epochs.size(); ++e) {
            const EpochProfile &a = original.threads[t].epochs[e];
            const EpochProfile &b = copy.threads[t].epochs[e];
            EXPECT_EQ(a.numOps, b.numOps);
            EXPECT_EQ(a.numLoads, b.numLoads);
            EXPECT_EQ(a.numStores, b.numStores);
            EXPECT_EQ(a.numBranches, b.numBranches);
            EXPECT_EQ(a.loadsDependingOnLoad, b.loadsDependingOnLoad);
            EXPECT_EQ(a.endType, b.endType);
            EXPECT_EQ(a.endArg, b.endArg);
            EXPECT_EQ(a.mix, b.mix);
            EXPECT_EQ(a.localRd.total(), b.localRd.total());
            EXPECT_EQ(a.localRd.totalInfinite(),
                      b.localRd.totalInfinite());
            EXPECT_EQ(a.globalRd.total(), b.globalRd.total());
            EXPECT_EQ(a.instrRd.total(), b.instrRd.total());
            EXPECT_EQ(a.microTraces.size(), b.microTraces.size());
            EXPECT_NEAR(a.branches.averageLinearEntropy(),
                        b.branches.averageLinearEntropy(), 1e-12);
        }
    }
}

TEST(Serialize, RoundTripPreservesMicroTraces)
{
    const WorkloadProfile original = sampleProfile();
    const WorkloadProfile copy = roundTrip(original);
    // Find the first epoch that actually carries micro-traces (early
    // epochs may be pure synchronization).
    size_t epoch = 0;
    while (epoch < original.threads[1].epochs.size() &&
           original.threads[1].epochs[epoch].microTraces.empty()) {
        ++epoch;
    }
    ASSERT_LT(epoch, original.threads[1].epochs.size());
    const auto &a = original.threads[1].epochs[epoch].microTraces;
    const auto &b = copy.threads[1].epochs[epoch].microTraces;
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (size_t i = 0; i < a[0].ops.size(); ++i) {
        EXPECT_EQ(a[0].ops[i].op, b[0].ops[i].op);
        EXPECT_EQ(a[0].ops[i].dep1, b[0].ops[i].dep1);
        EXPECT_EQ(a[0].ops[i].dep2, b[0].ops[i].dep2);
        EXPECT_EQ(a[0].ops[i].localRd, b[0].ops[i].localRd);
        EXPECT_EQ(a[0].ops[i].globalRd, b[0].ops[i].globalRd);
    }
}

TEST(Serialize, ReloadedProfilePredictsIdentically)
{
    const WorkloadProfile original = sampleProfile();
    const WorkloadProfile copy = roundTrip(original);
    for (const MulticoreConfig &cfg : tableIvConfigs()) {
        const RppmPrediction a = predict(original, cfg);
        const RppmPrediction b = predict(copy, cfg);
        EXPECT_DOUBLE_EQ(a.totalCycles, b.totalCycles) << cfg.name;
        for (size_t t = 0; t < a.threads.size(); ++t) {
            EXPECT_DOUBLE_EQ(a.threads[t].activeCycles,
                             b.threads[t].activeCycles);
        }
    }
}

TEST(Serialize, DoubleRoundTripStable)
{
    const WorkloadProfile original = sampleProfile();
    const WorkloadProfile once = roundTrip(original);
    const WorkloadProfile twice = roundTrip(once);
    std::stringstream sa, sb;
    saveProfile(once, sa);
    saveProfile(twice, sb);
    // EXPECT_TRUE rather than EXPECT_EQ: on failure, gtest would try to
    // diff two ~0.5 MB strings.
    EXPECT_TRUE(sa.str() == sb.str());
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream ss("NOTAPROFILE 9\n");
    EXPECT_THROW(loadProfile(ss), std::invalid_argument);
}

TEST(Serialize, RejectsTruncatedInput)
{
    const WorkloadProfile original = sampleProfile();
    std::stringstream ss;
    saveProfile(original, ss);
    const std::string full = ss.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW(loadProfile(truncated), std::invalid_argument);
}

TEST(Serialize, RejectsEmptyStream)
{
    std::stringstream ss;
    EXPECT_THROW(loadProfile(ss), std::invalid_argument);
}

TEST(Serialize, FileRoundTrip)
{
    const WorkloadProfile original = sampleProfile();
    const std::string path = "/tmp/rppm_test_profile.txt";
    saveProfileToFile(original, path);
    const WorkloadProfile copy = loadProfileFromFile(path);
    EXPECT_EQ(copy.name, original.name);
    const RppmPrediction a = predict(original, baseConfig());
    const RppmPrediction b = predict(copy, baseConfig());
    EXPECT_DOUBLE_EQ(a.totalCycles, b.totalCycles);
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows)
{
    EXPECT_THROW(loadProfileFromFile("/nonexistent/rppm.prof"),
                 std::runtime_error);
}

} // namespace
} // namespace rppm

/**
 * @file
 * Tests for the rppmd serving stack (src/server):
 *
 *  - wire-protocol codecs round-trip and reject malformed payloads
 *    (trailing garbage, wrong container version) like the file loaders;
 *  - frame transport handles clean EOF, short reads, bad magic and
 *    hostile lengths over a real socketpair;
 *  - the daemon negotiates versions, reports request-level errors
 *    without dropping the connection, serves mmap'd trace files, and
 *    drains cleanly on stop();
 *  - the acceptance bar: four concurrent clients sweeping all 26 suite
 *    kernels receive results bit-identical to an in-process
 *    Study::run() of the same grid, while profiles and prediction
 *    memos are shared across clients.
 *
 * Everything runs the server in-process, so the tsan CI shard can put
 * the full accept/reader/worker machinery under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.hh"
#include "server/client.hh"
#include "server/protocol.hh"
#include "server/server.hh"
#include "study/study.hh"
#include "trace/trace_io.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace server {
namespace {

/** Per-test socket path, unique per process to survive parallel ctest. */
std::string
socketPathFor(const char *tag)
{
    return "/tmp/rppm_test_" + std::string(tag) + "_" +
           std::to_string(static_cast<unsigned long>(::getpid())) + ".sock";
}

/** Light profiling so the suite-wide tests stay fast; the options ride
 *  the wire, keeping daemon and local reference on the same profile. */
ProfilerOptions
lightProfiler()
{
    ProfilerOptions opts;
    opts.microTraceLength = 100;
    opts.microTraceInterval = 2000;
    return opts;
}

/** A connected AF_UNIX stream fd for raw protocol pokes. */
int
rawConnect(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

// ------------------------------------------------------ payload codecs ---

TEST(Protocol, RequestRoundTripsEveryField)
{
    RequestMsg req;
    req.id = 42;
    req.kind = WorkloadRefKind::TracePath;
    req.workload = "/tmp/some_trace.rppmtrc";
    req.profiler = lightProfiler();
    req.profiler.detectInvalidation = false;
    req.rppm.sync.syncOpCost = 17.5;
    req.rppm.eq1.mlpOverlap = false;
    req.rppm.eq1.branch = false;
    req.deadlineMs = 1500; // v2 field
    req.configs = tableIvConfigs();
    const auto hetero = heterogeneousConfigs();
    req.configs.push_back(hetero.front()); // heterogeneous cores + mapping

    const RequestMsg out = decodeRequest(encodeRequest(req));
    EXPECT_EQ(out.id, req.id);
    EXPECT_EQ(out.kind, req.kind);
    EXPECT_EQ(out.workload, req.workload);
    EXPECT_EQ(out.evaluator, req.evaluator);
    EXPECT_EQ(out.profiler.microTraceLength, req.profiler.microTraceLength);
    EXPECT_EQ(out.profiler.microTraceInterval,
              req.profiler.microTraceInterval);
    EXPECT_EQ(out.profiler.detectInvalidation,
              req.profiler.detectInvalidation);
    EXPECT_EQ(out.rppm.sync.syncOpCost, req.rppm.sync.syncOpCost);
    EXPECT_EQ(out.rppm.eq1.mlpOverlap, req.rppm.eq1.mlpOverlap);
    EXPECT_EQ(out.rppm.eq1.branch, req.rppm.eq1.branch);
    EXPECT_EQ(out.rppm.eq1.ilpReplay, req.rppm.eq1.ilpReplay);
    EXPECT_EQ(out.deadlineMs, req.deadlineMs);
    ASSERT_EQ(out.configs.size(), req.configs.size());
    for (size_t i = 0; i < req.configs.size(); ++i)
        EXPECT_TRUE(out.configs[i] == req.configs[i]) << i;
}

TEST(Protocol, ResultAndControlRoundTrips)
{
    ResultMsg res;
    res.id = 7;
    res.cell = 3;
    res.config = "Base";
    res.cycles = 6109801.7816641219;
    res.seconds = 0.0024439207126656487;
    res.threadSeconds = {0.1, 0.2, 0.3, 0.4};
    const ResultMsg r = decodeResult(encodeResult(res));
    EXPECT_EQ(r.id, res.id);
    EXPECT_EQ(r.cell, res.cell);
    EXPECT_EQ(r.config, res.config);
    EXPECT_EQ(r.cycles, res.cycles);
    EXPECT_EQ(r.seconds, res.seconds);
    EXPECT_EQ(r.threadSeconds, res.threadSeconds);

    const HelloMsg hello = decodeHello(encodeHello({"test-client"}));
    EXPECT_EQ(hello.clientName, "test-client");
    const HelloOkMsg ok = decodeHelloOk(encodeHelloOk({"rppmd", 1}));
    EXPECT_EQ(ok.serverName, "rppmd");
    EXPECT_EQ(ok.version, 1u);
    const DoneMsg done = decodeDone(encodeDone({9, 26}));
    EXPECT_EQ(done.id, 9u);
    EXPECT_EQ(done.cells, 26u);
    const ErrorMsg err = decodeError(encodeError({3, "no such workload"}));
    EXPECT_EQ(err.id, 3u);
    EXPECT_EQ(err.message, "no such workload");
    const BusyMsg busy = decodeBusy(encodeBusy({11, 250}));
    EXPECT_EQ(busy.id, 11u);
    EXPECT_EQ(busy.retryAfterMs, 250u);
    decodeShutdown(encodeShutdown()); // must not throw
}

TEST(Protocol, RejectsTrailingGarbageInPayload)
{
    EXPECT_THROW(decodeHello(encodeHello({"x"}) + "junk"),
                 std::invalid_argument);
    EXPECT_THROW(decodeDone(encodeDone({1, 2}) + "junk"),
                 std::invalid_argument);
}

TEST(Protocol, RejectsWrongContainerVersion)
{
    // The version field sits after the 8-byte magic and the 4-byte
    // endianness marker, exactly as in the RPPMTRC container.
    std::string payload = encodeHello({"x"});
    payload[12] = static_cast<char>(kWireVersion + 1);
    EXPECT_THROW(decodeHello(payload), std::invalid_argument);
}

// ------------------------------------------------------ frame transport ---

TEST(Protocol, FrameRoundTripOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string payload = encodeHello({"pair"});
    writeFrame(fds[0], MsgType::Hello, payload);
    Frame frame;
    ASSERT_TRUE(readFrame(fds[1], frame));
    EXPECT_EQ(frame.type, MsgType::Hello);
    EXPECT_EQ(frame.payload, payload);

    // Closing the writer yields a clean EOF at the frame boundary.
    ::close(fds[0]);
    EXPECT_FALSE(readFrame(fds[1], frame));
    ::close(fds[1]);
}

TEST(Protocol, RejectsBadFrameMagic)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const char junk[16] = "immaterialjunk!";
    ASSERT_EQ(::write(fds[0], junk, sizeof(junk)), 16);
    ::close(fds[0]);
    Frame frame;
    EXPECT_THROW(readFrame(fds[1], frame), ProtocolError);
    ::close(fds[1]);
}

TEST(Protocol, ShortReadMidFrameThrows)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string payload = encodeHello({"short"});
    // A valid header promising more bytes than we deliver.
    struct
    {
        uint32_t magic = kFrameMagic;
        uint32_t type = static_cast<uint32_t>(MsgType::Hello);
        uint64_t len;
    } header;
    header.len = payload.size();
    ASSERT_EQ(::write(fds[0], &header, sizeof(header)),
              static_cast<ssize_t>(sizeof(header)));
    ASSERT_EQ(::write(fds[0], payload.data(), 3), 3);
    ::close(fds[0]); // EOF mid-payload
    Frame frame;
    EXPECT_THROW(readFrame(fds[1], frame), ProtocolError);
    ::close(fds[1]);
}

TEST(Protocol, RejectsHostilePayloadLengthBeforeAllocating)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    struct
    {
        uint32_t magic = kFrameMagic;
        uint32_t type = static_cast<uint32_t>(MsgType::Hello);
        uint64_t len = kMaxFramePayload + 1;
    } header;
    ASSERT_EQ(::write(fds[0], &header, sizeof(header)),
              static_cast<ssize_t>(sizeof(header)));
    Frame frame;
    EXPECT_THROW(readFrame(fds[1], frame), ProtocolError);
    ::close(fds[0]);
    ::close(fds[1]);
}

// ------------------------------------------------------- daemon sessions ---

TEST(Server, NegotiatesAndReportsStats)
{
    ServerOptions opts;
    opts.socketPath = socketPathFor("nego");
    RppmServer server(opts);
    server.start();

    RppmClient client;
    client.connect(opts.socketPath, "test");
    EXPECT_EQ(client.serverName(), "rppmd");
    client.close();

    server.stop();
    EXPECT_EQ(server.stats().connections, 1u);
    EXPECT_FALSE(std::filesystem::exists(opts.socketPath));
}

TEST(Server, RejectsVersionMismatchWithError)
{
    ServerOptions opts;
    opts.socketPath = socketPathFor("vers");
    RppmServer server(opts);
    server.start();

    const int fd = rawConnect(opts.socketPath);
    std::string hello = encodeHello({"future-client"});
    hello[12] = static_cast<char>(kWireVersion + 1);
    writeFrame(fd, MsgType::Hello, hello);
    Frame frame;
    ASSERT_TRUE(readFrame(fd, frame));
    EXPECT_EQ(frame.type, MsgType::Error);
    EXPECT_EQ(decodeError(frame.payload).id, 0u); // connection-level
    ::close(fd);
    server.stop();
}

TEST(Server, MalformedFrameGetsConnectionError)
{
    ServerOptions opts;
    opts.socketPath = socketPathFor("mal");
    RppmServer server(opts);
    server.start();

    const int fd = rawConnect(opts.socketPath);
    const char junk[16] = "notaframeheader";
    ASSERT_EQ(::write(fd, junk, sizeof(junk)), 16);
    Frame frame;
    ASSERT_TRUE(readFrame(fd, frame));
    EXPECT_EQ(frame.type, MsgType::Error);
    EXPECT_EQ(decodeError(frame.payload).id, 0u);
    ::close(fd);
    server.stop();
}

TEST(Server, UnknownWorkloadIsRequestLevelError)
{
    ServerOptions opts;
    opts.socketPath = socketPathFor("err");
    RppmServer server(opts);
    server.start();

    RppmClient client;
    client.connect(opts.socketPath);
    Query bad;
    bad.workload = "no-such-benchmark";
    bad.configs = {baseConfig()};
    EXPECT_THROW(client.evaluate(bad), std::runtime_error);

    // The connection survives request-level failures.
    Query good;
    good.workload = "backprop";
    good.profiler = lightProfiler();
    good.configs = {baseConfig()};
    const auto results = client.evaluate(good);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].cycles, 0.0);
    EXPECT_EQ(results[0].config, "Base");

    client.close();
    server.stop();
    EXPECT_EQ(server.stats().requests, 1u); // the bad one was never admitted
}

TEST(Server, ServesMmapTraceFilesIdenticallyToLocalStudy)
{
    WorkloadSpec spec = barrierLoopSpec(3, 4, 2500);
    spec.name = "served-trace";
    spec.csPerEpoch = 2;
    const ColumnarTrace trace =
        ColumnarTrace::fromWorkload(generateWorkload(spec));
    const std::string tracePath =
        socketPathFor("tracefile") + ".rppmtrc";
    saveTraceToFile(trace, tracePath);

    // The in-process reference: a Study over the same mmap'd view.
    Study study;
    study.add(WorkloadSource(loadTraceViewFromFile(tracePath)));
    study.addConfigs(tableIvConfigs());
    study.addEvaluator("rppm");
    study.profilerOptions(lightProfiler());
    const StudyResult local = study.run();

    ServerOptions opts;
    opts.socketPath = socketPathFor("trace");
    opts.workers = 2;
    RppmServer server(opts);
    server.start();

    RppmClient client;
    client.connect(opts.socketPath);
    Query query;
    query.kind = WorkloadRefKind::TracePath;
    query.workload = tracePath;
    query.profiler = lightProfiler();
    query.configs = tableIvConfigs();
    const auto results = client.evaluate(query);

    ASSERT_EQ(results.size(), query.configs.size());
    for (size_t i = 0; i < results.size(); ++i) {
        const Evaluation &ref = local.at(
            "served-trace", query.configs[i].name, "rppm");
        EXPECT_EQ(results[i].cycles, ref.cycles) << query.configs[i].name;
        EXPECT_EQ(results[i].seconds, ref.seconds);
        EXPECT_EQ(results[i].threadSeconds, ref.threadSeconds);
    }
    client.close();
    server.stop();
    std::filesystem::remove(tracePath);
}

TEST(Server, ConcurrentClientsBitIdenticalToStudyOnAllKernels)
{
    // The acceptance bar of the subsystem: four concurrent clients
    // sweep every kernel of the 26-benchmark suite and every result
    // must equal an in-process Study::run() bit for bit.
    const std::vector<SuiteEntry> suite = fullSuite();
    const std::vector<MulticoreConfig> configs = {baseConfig(),
                                                  tableIvConfigs().front()};

    Study study;
    study.addSuite(suite);
    study.addConfigs(configs);
    study.addEvaluator("rppm");
    study.profilerOptions(lightProfiler());
    const StudyResult local = study.run();

    ServerOptions opts;
    opts.socketPath = socketPathFor("hammer");
    opts.workers = 2;
    RppmServer server(opts);
    server.start();

    constexpr int kClients = 4;
    std::vector<std::vector<std::pair<std::string, std::vector<CellResult>>>>
        byClient(kClients);
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                RppmClient client;
                client.connect(opts.socketPath);
                // Round-robin kernel split across the clients.
                for (size_t i = c; i < suite.size(); i += kClients) {
                    Query query;
                    query.workload = suite[i].spec.name;
                    query.profiler = lightProfiler();
                    query.configs = configs;
                    byClient[c].emplace_back(query.workload,
                                             client.evaluate(query));
                }
            } catch (const std::exception &) {
                ++failures;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    size_t checked = 0;
    for (const auto &results : byClient) {
        for (const auto &[workload, cells] : results) {
            ASSERT_EQ(cells.size(), configs.size());
            for (size_t i = 0; i < cells.size(); ++i) {
                const Evaluation &ref =
                    local.at(workload, configs[i].name, "rppm");
                EXPECT_EQ(cells[i].cycles, ref.cycles)
                    << workload << "/" << configs[i].name;
                EXPECT_EQ(cells[i].seconds, ref.seconds);
                EXPECT_EQ(cells[i].threadSeconds, ref.threadSeconds);
                ++checked;
            }
        }
    }
    EXPECT_EQ(checked, suite.size() * configs.size());

    // Cross-client reuse: every kernel profiled exactly once, one
    // engine per profile, no evictions without a budget.
    const RppmServer::Stats stats = server.stats();
    EXPECT_EQ(stats.requests, suite.size());
    EXPECT_EQ(stats.cells, suite.size() * configs.size());
    EXPECT_EQ(stats.profile.misses, suite.size());
    EXPECT_EQ(stats.profile.evictions, 0u);
    EXPECT_EQ(stats.memo.engines, suite.size());
    server.stop();
}

TEST(Server, WarmRepeatRequestsShareProfilesAndMemos)
{
    ServerOptions opts;
    opts.socketPath = socketPathFor("warm");
    RppmServer server(opts);
    server.start();

    Query query;
    query.workload = "backprop";
    query.profiler = lightProfiler();
    query.configs = tableIvConfigs();

    RppmClient client;
    client.connect(opts.socketPath);
    const auto cold = client.evaluate(query);
    const auto warm = client.evaluate(query);
    ASSERT_EQ(cold.size(), warm.size());
    for (size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].cycles, warm[i].cycles);
        EXPECT_EQ(cold[i].threadSeconds, warm[i].threadSeconds);
    }
    client.close();
    server.stop();

    const RppmServer::Stats stats = server.stats();
    EXPECT_EQ(stats.profile.misses, 1u);
    EXPECT_GE(stats.profile.memoryHits, 1u); // the repeat was free
    EXPECT_EQ(stats.memo.engines, 1u);
}

TEST(Server, ShutdownMessageInvokesCallback)
{
    std::atomic<bool> requested{false};
    ServerOptions opts;
    opts.socketPath = socketPathFor("shut");
    opts.onShutdownRequest = [&] { requested = true; };
    RppmServer server(opts);
    server.start();

    RppmClient client;
    client.connect(opts.socketPath);
    client.shutdownServer();
    // The Shutdown frame is processed by the reader before stop()'s
    // drain joins it, so after stop() the callback must have fired.
    Query query;
    query.workload = "backprop";
    query.profiler = lightProfiler();
    query.configs = {baseConfig()};
    client.evaluate(query); // round-trip orders the Shutdown before stop
    client.close();
    server.stop();
    EXPECT_TRUE(requested.load());
}

TEST(Server, IdleConnectionsAreReaped)
{
    ServerOptions opts;
    opts.socketPath = socketPathFor("idle");
    opts.idleTimeoutSec = 1;
    RppmServer server(opts);
    server.start();

    RppmClient client;
    client.connect(opts.socketPath);

    // Sit quiet past the timeout: the reader reaps the connection
    // (Error id 0, then close) instead of pinning a thread and an fd
    // for an abandoned client forever.
    std::this_thread::sleep_for(std::chrono::milliseconds(1600));
    Query query;
    query.workload = "backprop";
    query.profiler = lightProfiler();
    query.configs = {baseConfig()};
    EXPECT_THROW(client.evaluate(query), std::exception);
    client.close();

    // An active connection is untouched by the same timeout.
    RppmClient busy;
    busy.connect(opts.socketPath);
    const auto results = busy.evaluate(query);
    EXPECT_EQ(results.size(), 1u);
    busy.close();

    server.stop();
    EXPECT_EQ(server.stats().idleReaped, 1u);
}

TEST(Server, StopDrainsAdmittedRequests)
{
    ServerOptions opts;
    opts.socketPath = socketPathFor("drain");
    RppmServer server(opts);
    server.start();

    RppmClient client;
    client.connect(opts.socketPath);
    Query query;
    query.workload = "backprop";
    query.profiler = lightProfiler();
    query.configs = tableIvConfigs();

    // Evaluate from a helper thread while the main thread stops the
    // server: whichever side wins the race, the client either receives
    // every cell of an admitted request or a clean connection error —
    // never a hang or a torn frame.
    std::atomic<bool> ok{false};
    std::thread t([&] {
        try {
            const auto results = client.evaluate(query);
            ok = results.size() == query.configs.size();
        } catch (const std::exception &) {
            ok = true; // request never admitted: clean refusal
        }
    });
    server.stop();
    t.join();
    EXPECT_TRUE(ok.load());
    client.close();
}

} // namespace
} // namespace server
} // namespace rppm

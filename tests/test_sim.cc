/**
 * @file
 * Unit tests for src/sim: dynamic synchronization semantics (SyncState),
 * the multicore simulator, and bottlegraph construction.
 */

#include <gtest/gtest.h>

#include "sim/bottlegraph.hh"
#include "sim/simulator.hh"
#include "sim/sync_state.hh"
#include "trace/trace_builder.hh"

namespace rppm {
namespace {

TraceRecord
syncRec(SyncType type, uint32_t arg)
{
    TraceRecord rec;
    rec.sync = type;
    rec.syncArg = arg;
    return rec;
}

// ------------------------------------------------------------ SyncState ---

TEST(SyncState, WorkersStartBlocked)
{
    SyncState s(3, {});
    EXPECT_FALSE(s.blocked(0));
    EXPECT_TRUE(s.blocked(1));
    EXPECT_TRUE(s.blocked(2));
}

TEST(SyncState, CreateUnblocks)
{
    SyncState s(2, {});
    const auto out = s.apply(0, syncRec(SyncType::ThreadCreate, 1), 10.0);
    EXPECT_FALSE(out.blocks);
    ASSERT_EQ(out.released.size(), 1u);
    EXPECT_EQ(out.released[0].first, 1u);
    EXPECT_DOUBLE_EQ(out.released[0].second, 10.0);
    EXPECT_FALSE(s.blocked(1));
}

TEST(SyncState, JoinBlocksUntilChildFinishes)
{
    SyncState s(2, {});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    const auto join = s.apply(0, syncRec(SyncType::ThreadJoin, 1), 5.0);
    EXPECT_TRUE(join.blocks);
    EXPECT_TRUE(s.blocked(0));
    const auto fin = s.finish(1, 42.0);
    ASSERT_EQ(fin.released.size(), 1u);
    EXPECT_EQ(fin.released[0].first, 0u);
    EXPECT_DOUBLE_EQ(fin.released[0].second, 42.0);
    EXPECT_FALSE(s.blocked(0));
}

TEST(SyncState, JoinOfFinishedThreadReturnsImmediately)
{
    SyncState s(2, {});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    s.finish(1, 3.0);
    const auto join = s.apply(0, syncRec(SyncType::ThreadJoin, 1), 9.0);
    EXPECT_FALSE(join.blocks);
}

TEST(SyncState, BarrierReleasesAtMaxArrival)
{
    SyncState s(3, {{7, 3}});
    for (uint32_t t = 1; t < 3; ++t)
        s.apply(0, syncRec(SyncType::ThreadCreate, t), 0.0);
    EXPECT_TRUE(s.apply(0, syncRec(SyncType::BarrierWait, 7), 50.0).blocks);
    EXPECT_TRUE(s.apply(1, syncRec(SyncType::BarrierWait, 7), 30.0).blocks);
    const auto out = s.apply(2, syncRec(SyncType::BarrierWait, 7), 20.0);
    EXPECT_FALSE(out.blocks);
    // Everyone (including the last arriver) is released at the *latest*
    // arrival time, 50.
    ASSERT_EQ(out.released.size(), 3u);
    for (const auto &[tid, when] : out.released)
        EXPECT_DOUBLE_EQ(when, 50.0);
}

TEST(SyncState, BarrierResetsForNextGeneration)
{
    SyncState s(2, {{7, 2}});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    EXPECT_TRUE(s.apply(0, syncRec(SyncType::BarrierWait, 7), 1.0).blocks);
    EXPECT_FALSE(s.apply(1, syncRec(SyncType::BarrierWait, 7), 2.0).blocks);
    // Second generation works the same way.
    EXPECT_TRUE(s.apply(1, syncRec(SyncType::BarrierWait, 7), 3.0).blocks);
    const auto out = s.apply(0, syncRec(SyncType::BarrierWait, 7), 9.0);
    EXPECT_FALSE(out.blocks);
    for (const auto &[tid, when] : out.released)
        EXPECT_DOUBLE_EQ(when, 9.0);
}

TEST(SyncState, CondBarrierBehavesLikeBarrier)
{
    SyncState s(2, {{9, 2}});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    EXPECT_TRUE(s.apply(0, syncRec(SyncType::CondBarrier, 9), 5.0).blocks);
    const auto out = s.apply(1, syncRec(SyncType::CondBarrier, 9), 8.0);
    EXPECT_FALSE(out.blocks);
    EXPECT_EQ(out.released.size(), 2u);
}

TEST(SyncState, MutexExclusionAndFifoHandoff)
{
    SyncState s(3, {});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    s.apply(0, syncRec(SyncType::ThreadCreate, 2), 0.0);

    EXPECT_FALSE(s.apply(0, syncRec(SyncType::MutexLock, 4), 1.0).blocks);
    EXPECT_TRUE(s.apply(1, syncRec(SyncType::MutexLock, 4), 2.0).blocks);
    EXPECT_TRUE(s.apply(2, syncRec(SyncType::MutexLock, 4), 3.0).blocks);

    // Unlock hands the mutex to the first waiter.
    auto out = s.apply(0, syncRec(SyncType::MutexUnlock, 4), 10.0);
    ASSERT_EQ(out.released.size(), 1u);
    EXPECT_EQ(out.released[0].first, 1u);
    EXPECT_DOUBLE_EQ(out.released[0].second, 10.0);
    EXPECT_TRUE(s.blocked(2));

    out = s.apply(1, syncRec(SyncType::MutexUnlock, 4), 20.0);
    ASSERT_EQ(out.released.size(), 1u);
    EXPECT_EQ(out.released[0].first, 2u);
}

TEST(SyncState, UncontendedMutexFree)
{
    SyncState s(1, {});
    EXPECT_FALSE(s.apply(0, syncRec(SyncType::MutexLock, 4), 1.0).blocks);
    EXPECT_TRUE(s.apply(0, syncRec(SyncType::MutexUnlock, 4), 2.0)
                .released.empty());
    EXPECT_FALSE(s.apply(0, syncRec(SyncType::MutexLock, 4), 3.0).blocks);
}

TEST(SyncState, QueuePopBlocksWhenEmpty)
{
    SyncState s(2, {});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    EXPECT_TRUE(s.apply(1, syncRec(SyncType::QueuePop, 3), 2.0).blocks);
    const auto out = s.apply(0, syncRec(SyncType::QueuePush, 3), 7.0);
    ASSERT_EQ(out.released.size(), 1u);
    EXPECT_EQ(out.released[0].first, 1u);
    EXPECT_DOUBLE_EQ(out.released[0].second, 7.0);
}

TEST(SyncState, QueuePopConsumesBufferedItem)
{
    SyncState s(2, {});
    s.apply(0, syncRec(SyncType::ThreadCreate, 1), 0.0);
    s.apply(0, syncRec(SyncType::QueuePush, 3), 1.0);
    s.apply(0, syncRec(SyncType::QueuePush, 3), 2.0);
    EXPECT_FALSE(s.apply(1, syncRec(SyncType::QueuePop, 3), 5.0).blocks);
    EXPECT_FALSE(s.apply(1, syncRec(SyncType::QueuePop, 3), 6.0).blocks);
    EXPECT_TRUE(s.apply(1, syncRec(SyncType::QueuePop, 3), 7.0).blocks);
}

TEST(SyncState, CondMarkerHasNoEffect)
{
    SyncState s(1, {});
    const auto out = s.apply(0, syncRec(SyncType::CondMarker, 1), 1.0);
    EXPECT_FALSE(out.blocks);
    EXPECT_TRUE(out.released.empty());
}

TEST(SyncState, BarrierPopulationsFromTrace)
{
    WorkloadTrace trace;
    trace.threads.resize(3);
    ThreadTraceBuilder b0(trace.threads[0]);
    b0.sync(SyncType::BarrierWait, 5);
    ThreadTraceBuilder b1(trace.threads[1]);
    b1.sync(SyncType::BarrierWait, 5);
    b1.sync(SyncType::CondBarrier, 6);
    ThreadTraceBuilder b2(trace.threads[2]);
    b2.sync(SyncType::CondBarrier, 6);
    const auto pop = barrierPopulations(trace);
    EXPECT_EQ(pop.at(5), 2u);
    EXPECT_EQ(pop.at(6), 2u);
}

// ------------------------------------------------------------ Simulator ---

/** Build a trivial N-thread workload: create, work, barrier, work, join. */
WorkloadTrace
tinyWorkload(uint32_t workers, uint64_t ops, uint32_t barriers = 1)
{
    WorkloadTrace trace;
    trace.name = "tiny";
    trace.threads.resize(workers + 1);
    ThreadTraceBuilder main(trace.threads[0]);
    for (uint32_t w = 1; w <= workers; ++w)
        main.sync(SyncType::ThreadCreate, w);
    for (uint32_t b = 0; b < barriers; ++b) {
        for (uint64_t i = 0; i < ops; ++i)
            main.op(OpClass::IntAlu, 4 * static_cast<uint32_t>(i % 64));
        main.sync(SyncType::BarrierWait, 100 + b);
    }
    for (uint32_t w = 1; w <= workers; ++w)
        main.sync(SyncType::ThreadJoin, w);

    for (uint32_t w = 1; w <= workers; ++w) {
        ThreadTraceBuilder worker(trace.threads[w]);
        for (uint32_t b = 0; b < barriers; ++b) {
            for (uint64_t i = 0; i < ops * w; ++i)
                worker.op(OpClass::IntAlu,
                          4 * static_cast<uint32_t>(i % 64));
            worker.sync(SyncType::BarrierWait, 100 + b);
        }
    }
    return trace;
}

TEST(Simulator, Deterministic)
{
    const WorkloadTrace trace = tinyWorkload(3, 500, 3);
    const MulticoreConfig cfg = baseConfig();
    const SimResult a = simulate(trace, cfg);
    const SimResult b = simulate(trace, cfg);
    EXPECT_DOUBLE_EQ(a.totalCycles, b.totalCycles);
    for (size_t t = 0; t < a.threads.size(); ++t)
        EXPECT_DOUBLE_EQ(a.threads[t].finishTime, b.threads[t].finishTime);
}

TEST(Simulator, SlowestThreadDeterminesBarrierTiming)
{
    // Worker 3 does 3x the work of worker 1; everyone waits for it.
    const WorkloadTrace trace = tinyWorkload(3, 2000, 1);
    const SimResult res = simulate(trace, baseConfig());
    // Worker 1 must have substantial sync idle time; worker 3 little.
    EXPECT_GT(res.threads[1].syncCycles, res.threads[3].syncCycles * 2);
}

TEST(Simulator, TotalIsMaxThreadFinish)
{
    const WorkloadTrace trace = tinyWorkload(2, 1000, 2);
    const SimResult res = simulate(trace, baseConfig());
    double max_finish = 0.0;
    for (const auto &t : res.threads)
        max_finish = std::max(max_finish, t.finishTime);
    EXPECT_DOUBLE_EQ(res.totalCycles, max_finish);
    EXPECT_GT(res.totalCycles, 0.0);
}

TEST(Simulator, MainFinishesLast)
{
    // Main joins all workers, so its finish time is the total.
    const WorkloadTrace trace = tinyWorkload(3, 800, 2);
    const SimResult res = simulate(trace, baseConfig());
    EXPECT_DOUBLE_EQ(res.totalCycles, res.threads[0].finishTime);
}

TEST(Simulator, MutexSerializesCriticalSections)
{
    // Two workers each run K critical sections of L ops protected by one
    // mutex; with no other work, execution is fully serialized.
    WorkloadTrace trace;
    trace.name = "cs";
    trace.threads.resize(3);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::ThreadCreate, 1);
    main.sync(SyncType::ThreadCreate, 2);
    main.sync(SyncType::ThreadJoin, 1);
    main.sync(SyncType::ThreadJoin, 2);
    const int sections = 20;
    const int len = 400;
    for (uint32_t w = 1; w <= 2; ++w) {
        ThreadTraceBuilder worker(trace.threads[w]);
        for (int s = 0; s < sections; ++s) {
            worker.sync(SyncType::MutexLock, 77);
            for (int i = 0; i < len; ++i)
                worker.op(OpClass::IntAlu, 4 * (i % 32), 1);
            worker.sync(SyncType::MutexUnlock, 77);
        }
    }
    const SimResult res = simulate(trace, baseConfig());
    // Serial chain of IntAlu: ~1 cycle/op. Two workers x 20 x 400 ops
    // must take at least ~16000 cycles (fully serialized).
    EXPECT_GT(res.totalCycles, 0.9 * 2 * sections * len);
}

TEST(Simulator, JoinOnlyWorkloadOverlaps)
{
    // Without a mutex, the two workers overlap almost perfectly.
    WorkloadTrace trace;
    trace.name = "overlap";
    trace.threads.resize(3);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::ThreadCreate, 1);
    main.sync(SyncType::ThreadCreate, 2);
    main.sync(SyncType::ThreadJoin, 1);
    main.sync(SyncType::ThreadJoin, 2);
    const int n = 8000;
    for (uint32_t w = 1; w <= 2; ++w) {
        ThreadTraceBuilder worker(trace.threads[w]);
        for (int i = 0; i < n; ++i)
            worker.op(OpClass::IntAlu, 4 * (i % 32), 1);
    }
    const SimResult res = simulate(trace, baseConfig());
    // Serial per-thread time ~n cycles; parallel total must be ~n, not 2n.
    EXPECT_LT(res.totalCycles, 1.3 * n);
}

TEST(Simulator, ProducerConsumerQueue)
{
    WorkloadTrace trace;
    trace.name = "queue";
    trace.threads.resize(2);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::ThreadCreate, 1);
    const int items = 10;
    for (int i = 0; i < items; ++i) {
        for (int j = 0; j < 1000; ++j)
            main.op(OpClass::IntAlu, 4 * (j % 16), 1);
        main.sync(SyncType::QueuePush, 55);
    }
    main.sync(SyncType::ThreadJoin, 1);
    ThreadTraceBuilder worker(trace.threads[1]);
    for (int i = 0; i < items; ++i) {
        worker.sync(SyncType::QueuePop, 55);
        for (int j = 0; j < 100; ++j)
            worker.op(OpClass::IntAlu, 4 * (j % 16), 1);
    }
    const SimResult res = simulate(trace, baseConfig());
    // The consumer is rate-limited by the producer: it must idle most of
    // the time (production takes ~10x consumption).
    EXPECT_GT(res.threads[1].syncCycles, res.threads[1].activeCycles);
}

TEST(Simulator, HigherFrequencyShortensSeconds)
{
    const WorkloadTrace trace = tinyWorkload(2, 2000, 1);
    MulticoreConfig fast = baseConfig();
    fast.eachCore([](CoreConfig &c) { c.frequencyGHz = 5.0; });
    const SimResult base = simulate(trace, baseConfig());
    const SimResult faster = simulate(trace, fast);
    // Same cycle count (frequency does not change cycle behaviour here
    // since memory latency is in cycles), but fewer seconds.
    EXPECT_LT(faster.totalSeconds, base.totalSeconds);
}

TEST(Simulator, WiderCoreIsFaster)
{
    const WorkloadTrace trace = tinyWorkload(2, 5000, 1);
    MulticoreConfig narrow = baseConfig();
    narrow.eachCore([](CoreConfig &c) {
        c.dispatchWidth = 1;
        c.issueQueueSize = 16;
    });
    const SimResult wide = simulate(trace, baseConfig());
    const SimResult slim = simulate(trace, narrow);
    EXPECT_GT(slim.totalCycles, wide.totalCycles * 1.5);
}

TEST(Simulator, CpiStackAccountsTotal)
{
    const WorkloadTrace trace = tinyWorkload(3, 1500, 2);
    const SimResult res = simulate(trace, baseConfig());
    for (const auto &t : res.threads) {
        if (t.instructions == 0)
            continue;
        EXPECT_NEAR(t.cpi.total(), t.finishTime, t.finishTime * 0.05);
    }
}

TEST(Simulator, DeadlockDetected)
{
    // A thread waiting on a barrier nobody else reaches... a barrier with
    // population 2 where the second participant never arrives because it
    // first waits on an empty queue.
    WorkloadTrace trace;
    trace.threads.resize(2);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::ThreadCreate, 1);
    main.sync(SyncType::BarrierWait, 1);
    ThreadTraceBuilder worker(trace.threads[1]);
    worker.sync(SyncType::QueuePop, 2); // blocks forever
    worker.sync(SyncType::BarrierWait, 1);
    EXPECT_THROW(simulate(trace, baseConfig()), std::invalid_argument);
}

TEST(Simulator, ActivityIntervalsCoverBusyTime)
{
    const WorkloadTrace trace = tinyWorkload(2, 1000, 2);
    const SimResult res = simulate(trace, baseConfig());
    for (const auto &t : res.threads) {
        double covered = 0.0;
        for (const auto &iv : t.activity) {
            EXPECT_LE(iv.begin, iv.end);
            covered += iv.end - iv.begin;
        }
        // Busy coverage roughly matches active cycles (sync overhead ops
        // are inside activity intervals, so allow slack).
        EXPECT_GT(covered, 0.0);
        EXPECT_LE(covered, t.finishTime + 1e-9);
    }
}

// ----------------------------------------------------------- Bottlegraph ---

TEST(Bottlegraph, BalancedThreadsShareEvenly)
{
    std::vector<std::vector<ActivityInterval>> activity(4);
    for (auto &a : activity)
        a.push_back({0.0, 100.0});
    const Bottlegraph g = buildBottlegraph(activity, 100.0);
    for (uint32_t t = 0; t < 4; ++t)
        EXPECT_NEAR(g.normalizedHeight(t), 0.25, 1e-9);
    for (const auto &box : g.boxes)
        EXPECT_NEAR(box.parallelism, 4.0, 1e-9);
}

TEST(Bottlegraph, HeightsSumToTotal)
{
    std::vector<std::vector<ActivityInterval>> activity(3);
    activity[0] = {{0.0, 50.0}, {80.0, 100.0}};
    activity[1] = {{0.0, 70.0}};
    activity[2] = {{30.0, 100.0}};
    const Bottlegraph g = buildBottlegraph(activity, 100.0);
    double sum = 0.0;
    for (const auto &box : g.boxes)
        sum += box.height;
    // Heights sum to the union of busy time (100 here).
    EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(Bottlegraph, SequentialThreadIsBottleneck)
{
    // Thread 0 runs alone half the time: it gets the tallest box.
    std::vector<std::vector<ActivityInterval>> activity(2);
    activity[0] = {{0.0, 100.0}};
    activity[1] = {{0.0, 50.0}};
    const Bottlegraph g = buildBottlegraph(activity, 100.0);
    EXPECT_GT(g.normalizedHeight(0), g.normalizedHeight(1) * 2.0);
    // Thread 0's average parallelism: 50 cycles at 2, 50 at 1 => 100/75.
    for (const auto &box : g.boxes) {
        if (box.thread == 0) {
            EXPECT_NEAR(box.parallelism, 100.0 / 75.0, 1e-9);
        }
    }
}

TEST(Bottlegraph, SimilarityIdenticalIsOne)
{
    std::vector<std::vector<ActivityInterval>> activity(2);
    activity[0] = {{0.0, 100.0}};
    activity[1] = {{0.0, 60.0}};
    const Bottlegraph a = buildBottlegraph(activity, 100.0);
    const Bottlegraph b = buildBottlegraph(activity, 100.0);
    EXPECT_NEAR(bottlegraphSimilarity(a, b), 1.0, 1e-12);
}

TEST(Bottlegraph, SimilarityDetectsDifference)
{
    std::vector<std::vector<ActivityInterval>> a_act(2), b_act(2);
    a_act[0] = {{0.0, 100.0}};
    a_act[1] = {{0.0, 100.0}};
    b_act[0] = {{0.0, 100.0}};
    b_act[1] = {{0.0, 1.0}};
    const Bottlegraph a = buildBottlegraph(a_act, 100.0);
    const Bottlegraph b = buildBottlegraph(b_act, 100.0);
    EXPECT_LT(bottlegraphSimilarity(a, b), 0.7);
}

TEST(Bottlegraph, RenderContainsThreads)
{
    std::vector<std::vector<ActivityInterval>> activity(2);
    activity[0] = {{0.0, 100.0}};
    activity[1] = {{0.0, 60.0}};
    const Bottlegraph g = buildBottlegraph(activity, 100.0);
    const std::string out = g.render("test");
    EXPECT_NE(out.find("T0"), std::string::npos);
    EXPECT_NE(out.find("T1"), std::string::npos);
}

} // namespace
} // namespace rppm

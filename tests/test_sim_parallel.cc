/**
 * @file
 * Differential tests for the columnar and parallel simulator engines.
 *
 * The contract under test is absolute: simulate() on a ColumnarTrace —
 * sequential or with any SimOptions::jobs — must produce a SimResult
 * *byte-identical* to simulateLegacy()'s, on every kernel of the
 * workload suite, under custom scheduler/architecture options, and in
 * every dispatch corner (single thread, bus-coupled hierarchy, jobs
 * clamping). Equality is asserted through a deterministic hexfloat dump
 * of every SimResult field, so even a 1-ulp drift in any thread's
 * finish time, CPI component, activity interval or cache counter fails.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "sim/simulator.hh"
#include "trace/columnar.hh"
#include "trace/trace_builder.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

/** Deterministic dump of every SimResult field (hexfloat: equality
 *  means bit-equality for every double). */
std::string
dumpResult(const SimResult &r)
{
    std::ostringstream ss;
    ss << std::hexfloat;
    ss << r.workload << ' ' << r.config << ' ' << r.totalCycles << ' '
       << r.totalSeconds << '\n';
    for (const ThreadResult &t : r.threads) {
        ss << t.finishTime << ' ' << t.finishSeconds << ' '
           << t.activeCycles << ' ' << t.syncCycles << ' ' << t.core
           << ' ' << t.instructions << '\n';
        for (size_t c = 0; c < kNumCpiComponents; ++c)
            ss << t.cpi[static_cast<CpiComponent>(c)] << ' ';
        ss << '\n';
        for (const ActivityInterval &a : t.activity)
            ss << a.begin << ',' << a.end << ' ';
        ss << '\n';
    }
    for (const CoreMemStats &m : r.mem) {
        ss << m.l1iAccesses << ' ' << m.l1iMisses << ' ' << m.l1dAccesses
           << ' ' << m.l1dMisses << ' ' << m.l2Accesses << ' '
           << m.l2Misses << ' ' << m.llcAccesses << ' ' << m.llcMisses
           << ' ' << m.coherenceMisses << ' ' << m.invalidationsReceived
           << '\n';
    }
    for (const BranchStats &b : r.branch)
        ss << b.lookups << ' ' << b.mispredicts << '\n';
    return ss.str();
}

/** Suite spec scaled down so 26 kernels x several job counts stay fast
 *  (also under sanitizers); all synchronization structure is
 *  preserved. */
WorkloadSpec
scaledSpec(const SuiteEntry &entry, uint64_t divisor = 30)
{
    WorkloadSpec spec = entry.spec;
    spec.opsPerEpoch = std::max<uint64_t>(1, spec.opsPerEpoch / divisor);
    spec.initOps = std::max<uint64_t>(1, spec.initOps / divisor);
    spec.finalOps = std::max<uint64_t>(1, spec.finalOps / divisor);
    spec.itemOps = std::max<uint64_t>(1, spec.itemOps / divisor);
    return spec;
}

/** A structurally rich workload: barriers, critical sections, a
 *  producer-consumer queue, shared data, coherence traffic. */
WorkloadSpec
richSpec(const char *name = "sim-par-test")
{
    WorkloadSpec spec = barrierLoopSpec(4, 5, 2500);
    spec.name = name;
    spec.csPerEpoch = 2;
    spec.queueItems = 6;
    spec.kernel.sharedFrac = 0.25;
    spec.kernel.branchEntropy = 0.1;
    return spec;
}

const unsigned kJobCounts[] = {1, 2, 4, 7};

TEST(ParallelSimulator, BitIdenticalOnEveryKernelForEveryJobCount)
{
    // The tentpole guarantee: on all 26 suite kernels, the columnar
    // engine and the phased parallel engine dump byte-for-byte
    // identically to the legacy AoS reference, for every tested job
    // count (including the sequential columnar path itself, jobs = 1).
    const MulticoreConfig cfg = baseConfig();
    for (const SuiteEntry &entry : fullSuite()) {
        const WorkloadSpec spec = scaledSpec(entry);
        const WorkloadTrace trace = generateWorkload(spec);
        const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);
        const std::string legacy = dumpResult(simulateLegacy(trace, cfg));
        for (const unsigned jobs : kJobCounts) {
            SimOptions opts;
            opts.jobs = jobs;
            // EXPECT_TRUE rather than EXPECT_EQ: on failure gtest would
            // try to print two multi-hundred-kB strings.
            EXPECT_TRUE(dumpResult(simulate(cols, cfg, opts)) == legacy)
                << spec.name << " jobs=" << jobs;
        }
    }
}

TEST(ParallelSimulator, BitIdenticalUnderCustomOptions)
{
    // Options and architectures that change the simulated interleaving
    // or the sharding geometry must keep every engine identical: the
    // schedule replay honors the quantum and the sync cost, the shard
    // partition honors non-default line sizes, and heterogeneous
    // machines exercise per-thread time scales and per-slot cache
    // parameters.
    const WorkloadTrace trace = generateWorkload(richSpec());
    const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);

    struct Variant
    {
        const char *name;
        MulticoreConfig cfg;
        SimOptions opts;
    };
    std::vector<Variant> variants;
    variants.push_back({"base", baseConfig(), {}});
    {
        SimOptions opts;
        opts.quantum = 17;
        variants.push_back({"quantum17", baseConfig(), opts});
    }
    {
        SimOptions opts;
        opts.syncOpCost = 7.5;
        variants.push_back({"syncCost", baseConfig(), opts});
    }
    {
        MulticoreConfig cfg = baseConfig();
        for (CoreConfig &core : cfg.cores) {
            core.l1i.lineBytes = 256;
            core.l1d.lineBytes = 256;
            core.l2.lineBytes = 256;
        }
        cfg.llc.lineBytes = 256;
        variants.push_back({"line256", cfg, {}});
    }
    variants.push_back({"bigLittle", bigLittleConfig(2, 2), {}});

    for (const Variant &v : variants) {
        const std::string legacy =
            dumpResult(simulateLegacy(trace, v.cfg, v.opts));
        for (const unsigned jobs : kJobCounts) {
            SimOptions opts = v.opts;
            opts.jobs = jobs;
            EXPECT_TRUE(dumpResult(simulate(cols, v.cfg, opts)) == legacy)
                << v.name << " jobs=" << jobs;
        }
    }
}

TEST(ParallelSimulator, BusCoupledConfigFallsBackAndStaysIdentical)
{
    // memBusCycles > 0 couples cache latency to global time, which the
    // sharded replay cannot honor; the dispatcher must route such
    // configs to the sequential engine for every job count — still
    // byte-identical to the legacy reference.
    MulticoreConfig cfg = baseConfig();
    cfg.memBusCycles = 12;
    const WorkloadTrace trace = generateWorkload(richSpec());
    const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);
    const std::string legacy = dumpResult(simulateLegacy(trace, cfg));
    for (const unsigned jobs : kJobCounts) {
        SimOptions opts;
        opts.jobs = jobs;
        EXPECT_TRUE(dumpResult(simulate(cols, cfg, opts)) == legacy)
            << "bus jobs=" << jobs;
    }
}

TEST(ParallelSimulator, SingleThreadedTraceIsIdenticalAtAnyJobCount)
{
    // A 1-thread trace has nothing to overlap; the dispatcher runs it
    // sequentially no matter what jobs says, and the result matches.
    WorkloadTrace trace;
    trace.name = "solo";
    trace.threads.resize(1);
    ThreadTraceBuilder main(trace.threads[0]);
    for (uint64_t i = 0; i < 5000; ++i) {
        main.op(OpClass::IntAlu, 4 * static_cast<uint32_t>(i % 96));
        if (i % 3 == 0)
            main.load(64 * (i % 512), 4 * static_cast<uint32_t>(i % 96));
        if (i % 7 == 0)
            main.branch(4 * static_cast<uint32_t>(i % 96), i % 2 == 0);
    }
    const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);
    const std::string legacy =
        dumpResult(simulateLegacy(trace, baseConfig()));
    for (const unsigned jobs : kJobCounts) {
        SimOptions opts;
        opts.jobs = jobs;
        EXPECT_TRUE(dumpResult(simulate(cols, baseConfig(), opts)) ==
                    legacy)
            << "1-thread jobs=" << jobs;
    }
}

TEST(ParallelSimulator, AosOverloadRoutesThroughColumnar)
{
    // The WorkloadTrace overload converts and forwards; it must equal
    // both the explicit columnar call and the legacy engine.
    const WorkloadTrace trace = generateWorkload(richSpec());
    const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);
    const std::string via_aos = dumpResult(simulate(trace, baseConfig()));
    EXPECT_EQ(via_aos, dumpResult(simulate(cols, baseConfig())));
    EXPECT_TRUE(via_aos == dumpResult(simulateLegacy(trace, baseConfig())));
}

TEST(ParallelSimulator, JobsZeroMeansAllHardwareThreads)
{
    // jobs = 0 resolves to the hardware thread count; whatever that is
    // on the host, the result bits cannot change.
    const WorkloadTrace trace = generateWorkload(richSpec());
    const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);
    SimOptions opts;
    opts.jobs = 0;
    EXPECT_TRUE(dumpResult(simulate(cols, baseConfig(), opts)) ==
                dumpResult(simulateLegacy(trace, baseConfig())));
}

TEST(ParallelSimulator, RejectsZeroQuantum)
{
    const WorkloadTrace trace = generateWorkload(richSpec());
    const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);
    SimOptions opts;
    opts.quantum = 0;
    EXPECT_THROW(simulate(cols, baseConfig(), opts), std::invalid_argument);
    EXPECT_THROW(simulateLegacy(trace, baseConfig(), opts),
                 std::invalid_argument);
}

} // namespace
} // namespace rppm

/**
 * @file
 * Unit tests for src/simcore: the instruction-window-centric core timing
 * model, exercised with stub memory and branch interfaces so every timing
 * effect is isolated.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "simcore/core_model.hh"

namespace rppm {
namespace {

/** Fixed-latency memory stub. */
class StubMemory : public MemorySystemIf
{
  public:
    uint32_t loadLatency = 3;
    HitLevel level = HitLevel::L1;
    uint32_t fetchStall = 0;

    AccessResult
    dataAccess(uint64_t, bool, double) override
    {
        AccessResult r;
        r.level = level;
        r.latency = loadLatency;
        return r;
    }

    uint32_t instrFetch(uint64_t) override { return fetchStall; }
};

/** Branch stub with a fixed accuracy. */
class StubBranch : public BranchPredictorIf
{
  public:
    bool alwaysCorrect = true;
    int mispredictEvery = 0; // 0 = never
    int count = 0;

    bool
    predictAndUpdate(uint64_t, bool) override
    {
        ++count;
        if (mispredictEvery > 0 && count % mispredictEvery == 0)
            return false;
        return alwaysCorrect;
    }
};

CoreConfig
simpleCore(uint32_t width = 4, uint32_t rob = 64)
{
    CoreConfig cfg;
    cfg.dispatchWidth = width;
    cfg.robSize = rob;
    cfg.issueQueueSize = rob / 2;
    // Enough ALUs to sustain the dispatch width (the throughput tests
    // probe the front end, not FU contention).
    cfg.fus[static_cast<size_t>(OpClass::IntAlu)].count = width;
    return cfg;
}

TraceRecord
alu(uint16_t dep1 = 0)
{
    TraceRecord rec;
    rec.op = OpClass::IntAlu;
    rec.dep1 = dep1;
    return rec;
}

TEST(CoreModel, IndependentOpsReachDispatchWidth)
{
    StubMemory mem;
    StubBranch br;
    CoreModel core(simpleCore(4), mem, br);
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        core.execute(alu());
    const double ipc = n / core.now();
    EXPECT_NEAR(ipc, 4.0, 0.2);
}

TEST(CoreModel, SerialChainLimitedToOnePerLatency)
{
    StubMemory mem;
    StubBranch br;
    CoreModel core(simpleCore(4), mem, br);
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        core.execute(alu(1)); // every op depends on the previous one
    const double ipc = n / core.now();
    // IntAlu latency is 1 cycle: a serial chain runs at IPC ~1.
    EXPECT_NEAR(ipc, 1.0, 0.1);
}

TEST(CoreModel, LongLatencyChainScalesWithLatency)
{
    StubMemory mem;
    StubBranch br;
    CoreModel core(simpleCore(4), mem, br);
    TraceRecord mul;
    mul.op = OpClass::IntMul; // latency 3
    mul.dep1 = 1;
    const int n = 3000;
    for (int i = 0; i < n; ++i)
        core.execute(mul);
    const double cpi = core.now() / n;
    EXPECT_NEAR(cpi, 3.0, 0.2);
}

TEST(CoreModel, WidthScalesThroughput)
{
    for (uint32_t width : {2u, 4u, 6u}) {
        StubMemory mem;
        StubBranch br;
        CoreModel core(simpleCore(width, 288), mem, br);
        const int n = 8000;
        for (int i = 0; i < n; ++i)
            core.execute(alu());
        EXPECT_NEAR(n / core.now(), static_cast<double>(width),
                    0.1 * width);
    }
}

TEST(CoreModel, FuContentionLimitsDivides)
{
    StubMemory mem;
    StubBranch br;
    CoreModel core(simpleCore(4), mem, br);
    TraceRecord div;
    div.op = OpClass::IntDiv; // 1 unit, issue interval 12
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        core.execute(div);
    const double cpi = core.now() / n;
    EXPECT_NEAR(cpi, 12.0, 1.0); // throughput bound, not latency bound
}

TEST(CoreModel, RobStallsOnLongLoads)
{
    // A load missing to memory every ROB-th op forces a full stall: the
    // window cannot hide the latency beyond its size.
    StubMemory mem;
    mem.loadLatency = 200;
    mem.level = HitLevel::Memory;
    StubBranch br;
    const uint32_t rob = 32;
    CoreModel core(simpleCore(4, rob), mem, br);
    const int loads = 50;
    for (int l = 0; l < loads; ++l) {
        TraceRecord ld;
        ld.op = OpClass::Load;
        ld.addr = 0x1000;
        core.execute(ld);
        for (uint32_t i = 0; i < rob; ++i)
            core.execute(alu());
    }
    // Each iteration costs at least the memory latency when the ROB
    // cannot cover it... the ALU work (32 ops / width 4 = 8 cycles) is
    // hidden under the 200-cycle load.
    const double per_iter = core.now() / loads;
    EXPECT_GT(per_iter, 150.0);
    EXPECT_LT(per_iter, 260.0);
}

TEST(CoreModel, IndependentMissesOverlap)
{
    // Back-to-back independent memory loads overlap: total time well
    // under loads x latency.
    StubMemory mem;
    mem.loadLatency = 200;
    mem.level = HitLevel::Memory;
    StubBranch br;
    CoreModel core(simpleCore(4, 256), mem, br);
    const int n = 256;
    for (int i = 0; i < n; ++i) {
        TraceRecord ld;
        ld.op = OpClass::Load;
        core.execute(ld);
    }
    EXPECT_LT(core.now(), 0.25 * n * 200.0);
}

TEST(CoreModel, MshrsBoundOverlap)
{
    // With a single MSHR, misses serialize completely.
    StubMemory mem;
    mem.loadLatency = 100;
    mem.level = HitLevel::Memory;
    StubBranch br;
    CoreConfig cfg = simpleCore(4, 256);
    cfg.mshrs = 1;
    CoreModel core(cfg, mem, br);
    const int n = 50;
    for (int i = 0; i < n; ++i) {
        TraceRecord ld;
        ld.op = OpClass::Load;
        core.execute(ld);
    }
    EXPECT_GT(core.now(), 0.9 * n * 100.0);
}

TEST(CoreModel, BranchMispredictionAddsPenalty)
{
    StubMemory mem;
    StubBranch good, bad;
    bad.mispredictEvery = 10;
    CoreModel core_good(simpleCore(4), mem, good);
    CoreModel core_bad(simpleCore(4), mem, bad);
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        TraceRecord rec;
        rec.op = OpClass::Branch;
        rec.taken = i % 3 == 0;
        core_good.execute(rec);
        core_bad.execute(rec);
    }
    EXPECT_GT(core_bad.now(), core_good.now() * 1.5);
    EXPECT_GT(core_bad.cpiStack()[CpiComponent::Branch], 0.0);
    EXPECT_DOUBLE_EQ(core_good.cpiStack()[CpiComponent::Branch], 0.0);
}

TEST(CoreModel, ICacheStallsAccumulate)
{
    StubMemory mem;
    mem.fetchStall = 10;
    StubBranch br;
    CoreModel core(simpleCore(4), mem, br);
    for (int i = 0; i < 100; ++i)
        core.execute(alu());
    EXPECT_NEAR(core.cpiStack()[CpiComponent::ICache], 1000.0, 1.0);
    EXPECT_GT(core.now(), 1000.0);
}

TEST(CoreModel, IdleUntilAccountsSync)
{
    StubMemory mem;
    StubBranch br;
    CoreModel core(simpleCore(4), mem, br);
    for (int i = 0; i < 100; ++i)
        core.execute(alu());
    const double before = core.now();
    core.idleUntil(before + 500.0);
    EXPECT_DOUBLE_EQ(core.now(), before + 500.0);
    EXPECT_DOUBLE_EQ(core.cpiStack()[CpiComponent::Sync], 500.0);
    EXPECT_NEAR(core.activeCycles(), before, 1e-9);
}

TEST(CoreModel, IdleUntilPastIsNoOp)
{
    StubMemory mem;
    StubBranch br;
    CoreModel core(simpleCore(4), mem, br);
    for (int i = 0; i < 100; ++i)
        core.execute(alu());
    const double before = core.now();
    core.idleUntil(before - 10.0);
    EXPECT_DOUBLE_EQ(core.now(), before);
}

TEST(CoreModel, SyncOverheadAdvancesTime)
{
    StubMemory mem;
    StubBranch br;
    CoreModel core(simpleCore(4), mem, br);
    core.syncOverhead(40.0);
    EXPECT_DOUBLE_EQ(core.now(), 40.0);
    EXPECT_DOUBLE_EQ(core.cpiStack()[CpiComponent::Base], 40.0);
}

TEST(CoreModel, CpiStackSumsToTotalTime)
{
    // L1-latency loads so branch penalties stand out on the critical
    // path (penalties overlapped by back-end stalls are, by design,
    // attributed to the stall's cause instead).
    StubMemory mem;
    mem.loadLatency = 8;
    mem.level = HitLevel::L2;
    StubBranch br;
    br.mispredictEvery = 20;
    CoreModel core(simpleCore(4), mem, br);
    for (int i = 0; i < 5000; ++i) {
        TraceRecord rec;
        if (i % 5 == 0) {
            rec.op = OpClass::Load;
        } else if (i % 7 == 0) {
            rec.op = OpClass::Branch;
            rec.dep1 = 1; // resolves at the chain tip: penalty visible
        } else {
            rec.op = OpClass::IntAlu;
            rec.dep1 = 1;
        }
        core.execute(rec);
    }
    const CpiStack stack = core.cpiStack();
    // Base absorbs the remainder, so the stack total matches now().
    EXPECT_NEAR(stack.total(), core.now(), 1e-6);
    EXPECT_GT(stack[CpiComponent::MemL2], 0.0);
    EXPECT_GT(stack[CpiComponent::Branch], 0.0);
}

TEST(CoreModel, InstructionsCounted)
{
    StubMemory mem;
    StubBranch br;
    CoreModel core(simpleCore(4), mem, br);
    for (int i = 0; i < 123; ++i)
        core.execute(alu());
    EXPECT_EQ(core.instructions(), 123u);
}

TEST(CoreModel, RobLargerThanHistoryRejected)
{
    StubMemory mem;
    StubBranch br;
    CoreConfig cfg = simpleCore(4, 4096);
    EXPECT_THROW(CoreModel core(cfg, mem, br), std::invalid_argument);
}

/** Property sweep: IPC never exceeds dispatch width for any mix. */
class CoreIpcBoundTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(CoreIpcBoundTest, IpcBoundedByWidth)
{
    const auto [width, rob] = GetParam();
    StubMemory mem;
    StubBranch br;
    CoreModel core(simpleCore(width, rob), mem, br);
    uint64_t seed = width * 1000 + rob;
    for (int i = 0; i < 5000; ++i) {
        seed = seed * 2862933555777941757ULL + 3037000493ULL;
        TraceRecord rec;
        switch ((seed >> 40) % 4) {
          case 0: rec.op = OpClass::Load; break;
          case 1: rec.op = OpClass::FpMul; break;
          default: rec.op = OpClass::IntAlu; break;
        }
        rec.dep1 = static_cast<uint16_t>((seed >> 20) % 8);
        core.execute(rec);
    }
    EXPECT_LE(5000.0 / core.now(),
              static_cast<double>(width) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    WidthRobSweep, CoreIpcBoundTest,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(32u, 128u, 288u)));

} // namespace
} // namespace rppm

/**
 * @file
 * Unit tests for src/statstack: reuse -> stack distance conversion and
 * LRU miss-rate prediction, validated against brute-force stack-distance
 * oracles on synthetic access streams.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "common/histogram.hh"
#include "common/rng.hh"
#include "statstack/statstack.hh"

namespace rppm {
namespace {

/** Brute-force fully-associative LRU simulation: exact miss count. */
uint64_t
lruMisses(const std::vector<uint64_t> &stream, size_t lines)
{
    std::list<uint64_t> stack;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where;
    uint64_t misses = 0;
    for (uint64_t line : stream) {
        auto it = where.find(line);
        if (it != where.end()) {
            stack.erase(it->second);
        } else {
            ++misses;
            if (stack.size() >= lines) {
                where.erase(stack.back());
                stack.pop_back();
            }
        }
        stack.push_front(line);
        where[line] = stack.begin();
    }
    return misses;
}

/** Build the reuse-distance histogram of a stream (infinite for colds). */
LogHistogram
reuseHistogram(const std::vector<uint64_t> &stream)
{
    LogHistogram hist;
    std::unordered_map<uint64_t, uint64_t> last;
    for (uint64_t i = 0; i < stream.size(); ++i) {
        auto [it, inserted] = last.try_emplace(stream[i], 0);
        if (inserted)
            hist.add(LogHistogram::kInfinity);
        else
            hist.add(i - it->second - 1);
        it->second = i;
    }
    return hist;
}

TEST(StatStack, SequentialStreamAllCold)
{
    std::vector<uint64_t> stream;
    for (uint64_t i = 0; i < 1000; ++i)
        stream.push_back(i);
    const LogHistogram hist = reuseHistogram(stream);
    StatStack ss(hist);
    // Every access is cold: miss rate 1 regardless of cache size.
    EXPECT_DOUBLE_EQ(ss.missRate(16), 1.0);
    EXPECT_DOUBLE_EQ(ss.missRate(1 << 20), 1.0);
}

TEST(StatStack, TightLoopFitsInCache)
{
    // Cyclic access to 8 lines: after the cold start, everything hits in
    // any cache with >= 8 lines.
    std::vector<uint64_t> stream;
    for (int rep = 0; rep < 1000; ++rep)
        for (uint64_t l = 0; l < 8; ++l)
            stream.push_back(l);
    StatStack ss_hist(reuseHistogram(stream));
    EXPECT_NEAR(ss_hist.missRate(16), 8.0 / 8000.0, 1e-6);
    // And misses everywhere in a cache with fewer lines (cyclic LRU worst
    // case).
    EXPECT_NEAR(ss_hist.missRate(4), 1.0, 0.01);
}

TEST(StatStack, StackDistanceOfUniformStream)
{
    // Cyclic stream over K lines: every non-cold access has reuse
    // distance K-1 and true stack distance K-1.
    constexpr uint64_t kLines = 32;
    std::vector<uint64_t> stream;
    for (int rep = 0; rep < 500; ++rep)
        for (uint64_t l = 0; l < kLines; ++l)
            stream.push_back(l);
    StatStack ss(reuseHistogram(stream));
    EXPECT_NEAR(ss.stackDistance(kLines - 1),
                static_cast<double>(kLines - 1),
                static_cast<double>(kLines) * 0.15);
}

TEST(StatStack, EmptyHistogram)
{
    LogHistogram hist;
    StatStack ss(hist);
    EXPECT_TRUE(ss.empty());
    EXPECT_DOUBLE_EQ(ss.missRate(64), 0.0);
}

TEST(StatStack, ColdOnlyHistogram)
{
    LogHistogram hist;
    hist.add(LogHistogram::kInfinity, 100);
    StatStack ss(hist);
    EXPECT_DOUBLE_EQ(ss.missRate(1024), 1.0);
}

TEST(StatStack, MissRateMonotoneInCacheSize)
{
    Rng rng(17);
    std::vector<uint64_t> stream;
    for (int i = 0; i < 50000; ++i)
        stream.push_back(rng.nextBounded(4096));
    StatStack ss(reuseHistogram(stream));
    double prev = 1.1;
    for (uint64_t lines = 16; lines <= 16384; lines *= 2) {
        const double miss = ss.missRate(lines);
        EXPECT_LE(miss, prev + 1e-9) << lines;
        prev = miss;
    }
}

TEST(StatStack, CriticalReuseDistanceMonotone)
{
    Rng rng(19);
    std::vector<uint64_t> stream;
    for (int i = 0; i < 30000; ++i)
        stream.push_back(rng.nextBounded(2048));
    StatStack ss(reuseHistogram(stream));
    uint64_t prev = 0;
    for (uint64_t lines = 8; lines <= 4096; lines *= 2) {
        const uint64_t crd = ss.criticalReuseDistance(lines);
        EXPECT_GE(crd, prev);
        prev = crd == LogHistogram::kInfinity ? prev : crd;
    }
}

/**
 * Core accuracy property: StatStack's predicted miss rate matches a
 * brute-force fully-associative LRU simulation on random streams with a
 * range of working-set sizes and cache sizes.
 */
class StatStackAccuracyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>>
{
};

TEST_P(StatStackAccuracyTest, MatchesLruOracle)
{
    const auto [footprint, cache_lines] = GetParam();
    Rng rng(footprint * 131 + cache_lines);
    std::vector<uint64_t> stream;
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
        // Mix of uniform random over the footprint plus a hot subset, so
        // the reuse distribution is not trivially flat.
        if (rng.nextBool(0.3))
            stream.push_back(rng.nextBounded(std::max<uint64_t>(
                footprint / 16, 1)));
        else
            stream.push_back(rng.nextBounded(footprint));
    }
    const double oracle =
        static_cast<double>(lruMisses(stream, cache_lines)) / n;
    StatStack ss(reuseHistogram(stream));
    const double predicted = ss.missRate(cache_lines);
    EXPECT_NEAR(predicted, oracle, 0.05)
        << "footprint " << footprint << " cache " << cache_lines;
}

INSTANTIATE_TEST_SUITE_P(
    FootprintCacheSweep, StatStackAccuracyTest,
    ::testing::Combine(::testing::Values(256u, 1024u, 4096u, 16384u),
                       ::testing::Values(64u, 256u, 1024u, 4096u)));

TEST(StatStack, CapturesSharingInGlobalDistribution)
{
    // Two interleaved "threads" touching the same lines: the global
    // reuse distance is short even though each thread alone would have a
    // long one — positive interference (paper Fig. 2, address D).
    std::vector<uint64_t> shared_stream;
    for (int rep = 0; rep < 2000; ++rep) {
        // Thread A then thread B touch the same 4 lines alternately.
        for (uint64_t l = 0; l < 4; ++l) {
            shared_stream.push_back(l); // A
            shared_stream.push_back(l); // B
        }
    }
    StatStack ss(reuseHistogram(shared_stream));
    // Half the accesses have reuse distance 0: a tiny cache already
    // captures them.
    EXPECT_LT(ss.missRate(8), 0.02);
}

TEST(StatStack, InvalidationAsInfiniteDistanceRaisesMissRate)
{
    // A thread cycling over 4 lines, but with every second reuse broken
    // by a remote write (recorded as infinite): miss rate ~1/2 even in a
    // large cache.
    LogHistogram hist;
    hist.add(3, 500);
    hist.add(LogHistogram::kInfinity, 500);
    StatStack ss(hist);
    EXPECT_NEAR(ss.missRate(1024), 0.5, 0.01);
}

} // namespace
} // namespace rppm

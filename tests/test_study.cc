/**
 * @file
 * Tests for the Study evaluation facade: evaluator backends and the
 * registry, grid evaluation versus direct free-function calls, worker-
 * pool determinism, the parallel executor, result queries/exports and
 * the evaluator-backed design-space exploration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "profile/profiler.hh"
#include "rppm/baselines.hh"
#include "rppm/dse.hh"
#include "rppm/predictor.hh"
#include "sim/simulator.hh"
#include "study/executor.hh"
#include "study/study.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

WorkloadSpec
smallSpec(const char *name, uint64_t seed)
{
    WorkloadSpec spec = barrierLoopSpec(3, 4, 2000);
    spec.name = name;
    spec.seed = seed;
    spec.csPerEpoch = 1;
    spec.kernel.sharedFrac = 0.2;
    spec.kernel.branchEntropy = 0.1;
    return spec;
}

std::vector<MulticoreConfig>
threeConfigs()
{
    std::vector<MulticoreConfig> configs;
    MulticoreConfig base = baseConfig();
    configs.push_back(base);

    MulticoreConfig narrow = base;
    narrow.name = "narrow";
    narrow.eachCore([](CoreConfig &c) {
        c.dispatchWidth = 2;
        c.robSize = 64;
        c.issueQueueSize = 32;
    });
    configs.push_back(narrow);

    MulticoreConfig smallLlc = base;
    smallLlc.name = "small-llc";
    smallLlc.llc.sizeBytes = 1024 * 1024;
    configs.push_back(smallLlc);
    return configs;
}

// ------------------------------------------------------------ executor ---

TEST(ParallelExecutor, RunsEveryIndexOnce)
{
    for (unsigned jobs : {1u, 4u}) {
        ParallelExecutor executor(jobs);
        std::vector<std::atomic<int>> hits(100);
        executor.forEach(100, [&](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << i;
    }
}

TEST(ParallelExecutor, ZeroJobsResolvesToHardware)
{
    EXPECT_GE(ParallelExecutor(0).jobs(), 1u);
    EXPECT_EQ(ParallelExecutor(7).jobs(), 7u);
}

TEST(ParallelExecutor, PropagatesFirstException)
{
    ParallelExecutor executor(4);
    EXPECT_THROW(
        executor.forEach(50,
                         [](size_t i) {
                             if (i == 13)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
}

// ------------------------------------------------------------ backends ---

TEST(Evaluators, RegistryHasBuiltins)
{
    const std::vector<std::string> names = registeredEvaluators();
    for (const char *expected : {"crit", "main", "rppm", "sim"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
    EXPECT_TRUE(makeEvaluator("sim")->isOracle());
    EXPECT_FALSE(makeEvaluator("rppm")->isOracle());
    EXPECT_THROW(makeEvaluator("no-such-backend"), std::invalid_argument);
}

TEST(Evaluators, CustomRegistration)
{
    registerEvaluator("test-crit-alias", [] {
        return std::make_unique<CritEvaluator>("test-crit-alias");
    });
    const auto evaluator = makeEvaluator("test-crit-alias");
    EXPECT_EQ(evaluator->label(), "test-crit-alias");
}

TEST(Evaluators, BackendsMatchFreeFunctions)
{
    const WorkloadSpec spec = smallSpec("backend-check", 7);
    const MulticoreConfig cfg = baseConfig();
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile profile = profileWorkload(trace);

    Study study;
    study.addWorkload(spec).addConfig(cfg);
    study.addEvaluator("rppm")
        .addEvaluator("sim")
        .addEvaluator("main")
        .addEvaluator("crit");
    const StudyResult grid = study.run();

    EXPECT_DOUBLE_EQ(grid.at(spec.name, cfg.name, "rppm").cycles,
                     predict(profile, cfg).totalCycles);
    EXPECT_DOUBLE_EQ(grid.at(spec.name, cfg.name, "sim").cycles,
                     simulate(trace, cfg).totalCycles);
    EXPECT_DOUBLE_EQ(grid.at(spec.name, cfg.name, "main").cycles,
                     predictMain(profile, cfg));
    EXPECT_DOUBLE_EQ(grid.at(spec.name, cfg.name, "crit").cycles,
                     predictCrit(profile, cfg));
}

// ---------------------------------------------------------------- grid ---

TEST(Study, GridEqualsSerialPerPairPredict)
{
    // Satellite requirement: 2 workloads x 3 configs through the grid
    // == serial per-pair predict(), exactly.
    const std::vector<WorkloadSpec> specs = {smallSpec("grid-a", 11),
                                             smallSpec("grid-b", 22)};
    const std::vector<MulticoreConfig> configs = threeConfigs();

    Study study;
    for (const WorkloadSpec &spec : specs)
        study.addWorkload(spec);
    study.addConfigs(configs).addEvaluator("rppm");
    const StudyResult grid = study.run();

    for (const WorkloadSpec &spec : specs) {
        const WorkloadProfile profile =
            profileWorkload(generateWorkload(spec));
        for (const MulticoreConfig &cfg : configs) {
            const RppmPrediction direct = predict(profile, cfg);
            const Evaluation &cell = grid.at(spec.name, cfg.name, "rppm");
            EXPECT_DOUBLE_EQ(cell.cycles, direct.totalCycles)
                << spec.name << " on " << cfg.name;
            EXPECT_DOUBLE_EQ(cell.seconds, direct.totalSeconds);
        }
    }
}

TEST(Study, ParallelGridIsDeterministic)
{
    // Satellite requirement: the worker pool at >= 4 threads returns a
    // registry identical to serial execution.
    const std::vector<WorkloadSpec> specs = {smallSpec("det-a", 31),
                                             smallSpec("det-b", 32)};
    const std::vector<MulticoreConfig> configs = threeConfigs();

    auto runWith = [&](unsigned jobs) {
        Study study;
        for (const WorkloadSpec &spec : specs)
            study.addWorkload(spec);
        study.addConfigs(configs)
            .addEvaluator("rppm")
            .addEvaluator("main")
            .addEvaluator("crit")
            .jobs(jobs);
        return study.run();
    };

    const StudyResult serial = runWith(1);
    const StudyResult parallel = runWith(4);

    ASSERT_EQ(serial.cells().size(), parallel.cells().size());
    ASSERT_EQ(serial.cells().size(),
              specs.size() * configs.size() * 3);
    for (size_t i = 0; i < serial.cells().size(); ++i) {
        const Evaluation &a = serial.cells()[i];
        const Evaluation &b = parallel.cells()[i];
        // Same slot: ordering is deterministic, not just the multiset.
        EXPECT_EQ(a.workload, b.workload) << i;
        EXPECT_EQ(a.config, b.config) << i;
        EXPECT_EQ(a.evaluator, b.evaluator) << i;
        EXPECT_DOUBLE_EQ(a.cycles, b.cycles) << i;
        EXPECT_DOUBLE_EQ(a.seconds, b.seconds) << i;
    }
    // CSV export is byte-identical, too.
    EXPECT_TRUE(serial.csv() == parallel.csv());
}

TEST(Study, ValidatesItsInputs)
{
    EXPECT_THROW(Study().run(), std::invalid_argument); // no workloads

    Study noConfigs;
    noConfigs.addWorkload(smallSpec("w", 1)).addEvaluator("rppm");
    EXPECT_THROW(noConfigs.run(), std::invalid_argument);

    Study noEvaluators;
    noEvaluators.addWorkload(smallSpec("w", 1)).addConfig(baseConfig());
    EXPECT_THROW(noEvaluators.run(), std::invalid_argument);

    // Duplicate axis names throw at insertion time: letting them in
    // would silently shadow the earlier entry in name-keyed lookups.
    Study duplicate;
    duplicate.addWorkload(smallSpec("w", 1));
    EXPECT_THROW(duplicate.addWorkload(smallSpec("w", 2)),
                 std::invalid_argument);

    Study dupConfig;
    dupConfig.addConfig(baseConfig());
    EXPECT_THROW(dupConfig.addConfig(baseConfig()), std::invalid_argument);
    MulticoreConfig renamed = baseConfig();
    renamed.name = "Base-2";
    EXPECT_NO_THROW(dupConfig.addConfig(renamed));

    Study dupEvaluator;
    dupEvaluator.addEvaluator("rppm");
    EXPECT_THROW(dupEvaluator.addEvaluator("rppm"), std::invalid_argument);
    EXPECT_NO_THROW(dupEvaluator.addEvaluator("sim"));
}

TEST(Study, ErrorVsRejectsZeroCycleOracle)
{
    // Hand-built registry: a 1x1x2 grid whose oracle cell is zero.
    Evaluation model;
    model.workload = "w";
    model.config = "c";
    model.evaluator = "rppm";
    model.cycles = 100.0;
    Evaluation oracle = model;
    oracle.evaluator = "sim";
    oracle.cycles = 0.0;
    const StudyResult grid({"w"}, {"c"}, {"rppm", "sim"},
                           {model, oracle});
    EXPECT_THROW(grid.errorVs("w", "c", "rppm", "sim"), std::domain_error);
    // A non-zero oracle still works.
    Evaluation goodOracle = oracle;
    goodOracle.cycles = 50.0;
    const StudyResult ok({"w"}, {"c"}, {"rppm", "sim"},
                         {model, goodOracle});
    EXPECT_DOUBLE_EQ(ok.errorVs("w", "c", "rppm", "sim"), 1.0);
}

TEST(Study, ProfileOnlySourceServesModelButNotSim)
{
    const WorkloadSpec spec = smallSpec("profile-only", 5);
    const WorkloadProfile profile =
        profileWorkload(generateWorkload(spec));

    Study model;
    model.addWorkload(profile).addConfig(baseConfig()).addEvaluator(
        "rppm");
    const StudyResult grid = model.run();
    EXPECT_DOUBLE_EQ(grid.at(spec.name, "Base", "rppm").cycles,
                     predict(profile, baseConfig()).totalCycles);

    Study sim;
    sim.addWorkload(profile).addConfig(baseConfig()).addEvaluator("sim");
    EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(Study, ResultQueriesAndExports)
{
    const WorkloadSpec spec = smallSpec("export", 3);
    const MulticoreConfig cfg = baseConfig();
    Study study;
    study.addWorkload(spec).addConfig(cfg).addEvaluator("rppm")
        .addEvaluator("sim");
    const StudyResult grid = study.run();

    // find/at
    EXPECT_NE(grid.find(spec.name, cfg.name, "rppm"), nullptr);
    EXPECT_EQ(grid.find(spec.name, cfg.name, "nope"), nullptr);
    EXPECT_THROW(grid.at("ghost", cfg.name, "rppm"), std::out_of_range);

    // errorVs is |rppm - sim| / sim.
    const double expect =
        std::abs(grid.at(spec.name, cfg.name, "rppm").cycles -
                 grid.at(spec.name, cfg.name, "sim").cycles) /
        grid.at(spec.name, cfg.name, "sim").cycles;
    EXPECT_DOUBLE_EQ(grid.errorVs(spec.name, cfg.name, "rppm", "sim"),
                     expect);

    // sweep returns one cell per config, in config order.
    const auto cells = grid.sweep(spec.name, "rppm");
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0]->config, cfg.name);

    // CSV: header + one row per cell; JSON mentions every axis label.
    const std::string csv = grid.csv();
    EXPECT_NE(csv.find("workload,config,evaluator,cycles,seconds"),
              std::string::npos);
    EXPECT_EQ(static_cast<size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              1 + grid.cells().size());
    const std::string json = grid.json();
    EXPECT_NE(json.find("\"workload\": \"export\""), std::string::npos);
    EXPECT_NE(json.find("\"evaluator\": \"sim\""), std::string::npos);
}

TEST(Study, RppmOptionVariantsFlowThrough)
{
    // A custom-labelled RppmEvaluator with decompose=false must predict
    // the same total as the full model (the components telescope).
    const WorkloadSpec spec = smallSpec("variant", 17);
    RppmOptions fast;
    fast.eq1.decompose = false;

    Study study;
    study.addWorkload(spec).addConfig(baseConfig());
    study.addEvaluator(std::make_unique<RppmEvaluator>("fast", fast))
        .addEvaluator("rppm");
    const StudyResult grid = study.run();

    EXPECT_NEAR(grid.at(spec.name, "Base", "fast").cycles,
                grid.at(spec.name, "Base", "rppm").cycles, 1e-6);
}

// ----------------------------------------------------------------- dse ---

TEST(Dse, EvaluatorBackedExplorationMatchesLegacyWrapper)
{
    const WorkloadSpec spec = smallSpec("dse", 41);
    const std::vector<MulticoreConfig> configs = threeConfigs();

    // New API: oracle times through the Evaluator interface.
    DseOptions opts;
    opts.jobs = 4;
    const DseResult viaEvaluators =
        exploreDesignSpace(WorkloadSource(spec), configs, opts);

    // Legacy wrapper: caller-computed oracle times.
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile profile = profileWorkload(trace);
    std::vector<double> sim_seconds;
    for (const MulticoreConfig &cfg : configs)
        sim_seconds.push_back(simulate(trace, cfg).totalSeconds);
    const DseResult legacy =
        exploreDesignSpace(profile, configs, sim_seconds);

    ASSERT_EQ(viaEvaluators.predictedSeconds.size(), configs.size());
    ASSERT_EQ(viaEvaluators.simulatedSeconds.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        EXPECT_DOUBLE_EQ(viaEvaluators.predictedSeconds[i],
                         legacy.predictedSeconds[i]) << i;
        EXPECT_DOUBLE_EQ(viaEvaluators.simulatedSeconds[i],
                         legacy.simulatedSeconds[i]) << i;
    }
    EXPECT_EQ(viaEvaluators.predictedBest(), legacy.predictedBest());
    EXPECT_EQ(viaEvaluators.trueBest(), legacy.trueBest());
}

TEST(Dse, RejectsNonOracleBackend)
{
    DseOptions opts;
    opts.oracle = "crit"; // not a golden reference
    EXPECT_THROW(exploreDesignSpace(WorkloadSource(smallSpec("x", 1)),
                                    {baseConfig()}, opts),
                 std::exception);
}

} // namespace
} // namespace rppm

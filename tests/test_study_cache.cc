/**
 * @file
 * Tests for the Study profile cache: in-memory reuse across grid cells,
 * the serialized tier (a fresh Study reading another Study's profile
 * directory predicts bit-identically — extending the
 * predict(load(save(p))) == predict(p) guarantee of
 * profile/serialize.hh), and keying by profiler options.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "profile/profiler.hh"
#include "rppm/predictor.hh"
#include "study/profile_cache.hh"
#include "study/study.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

WorkloadSpec
cacheSpec(const char *name)
{
    WorkloadSpec spec = barrierLoopSpec(3, 4, 2500);
    spec.name = name;
    spec.csPerEpoch = 2;
    spec.queueItems = 5;
    spec.kernel.sharedFrac = 0.2;
    spec.kernel.branchEntropy = 0.1;
    return spec;
}

/** A unique, self-cleaning temp directory per test. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(std::filesystem::temp_directory_path() /
                ("rppm_cache_test_" + tag))
    {
        std::filesystem::remove_all(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    std::filesystem::path path_;
};

TEST(ProfileCache, MemoryTierComputesOnce)
{
    const WorkloadSpec spec = cacheSpec("cache-mem");
    const WorkloadTrace trace = generateWorkload(spec);

    ProfileCache cache;
    int computations = 0;
    auto compute = [&] {
        ++computations;
        return profileWorkload(trace);
    };
    const auto first = cache.getOrCompute(spec.name, {}, compute);
    const auto second = cache.getOrCompute(spec.name, {}, compute);
    EXPECT_EQ(computations, 1);
    EXPECT_EQ(first.get(), second.get()); // same shared instance

    const ProfileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.memoryHits, 1u);
    EXPECT_EQ(stats.diskHits, 0u);
}

TEST(ProfileCache, KeyedByProfilerOptions)
{
    const WorkloadSpec spec = cacheSpec("cache-key");
    const WorkloadTrace trace = generateWorkload(spec);

    ProfilerOptions stripped;
    stripped.detectInvalidation = false;
    EXPECT_NE(profilerOptionsKey({}), profilerOptionsKey(stripped));

    ProfileCache cache;
    int computations = 0;
    auto computeWith = [&](const ProfilerOptions &opts) {
        return cache.getOrCompute(spec.name, opts, [&] {
            ++computations;
            return profileWorkload(trace, opts);
        });
    };
    computeWith({});
    computeWith(stripped);
    computeWith({});
    EXPECT_EQ(computations, 2); // one per distinct option set
}

TEST(ProfileCache, GridReusesOneProfileAcrossCells)
{
    const WorkloadSpec spec = cacheSpec("cache-grid");
    Study study;
    study.addWorkload(spec)
        .addConfigs(tableIvConfigs())
        .addEvaluator("rppm")
        .addEvaluator("main")
        .addEvaluator("crit")
        .jobs(4);
    study.run();
    // 5 configs x 3 profile-consuming evaluators, but one profiling run.
    EXPECT_EQ(study.profiles().stats().misses, 1u);
}

TEST(ProfileCache, SerializedTierPredictsBitIdentically)
{
    // Satellite requirement: a Study reading a serialized-profile
    // directory produces bit-identical predictions to in-memory
    // profiling.
    const TempDir dir("serialized");
    const WorkloadSpec spec = cacheSpec("cache-disk");

    auto runStudy = [&](bool useDir) {
        Study study;
        study.addWorkload(spec)
            .addConfigs(tableIvConfigs())
            .addEvaluator("rppm");
        if (useDir)
            study.profileDirectory(dir.str());
        return study.run();
    };

    // In-memory reference.
    const StudyResult memory = runStudy(false);

    // First directory-backed run profiles and serializes...
    runStudy(true);
    // ...the second one (fresh Study = fresh memory tier) must load
    // from disk.
    Study reloaded;
    reloaded.addWorkload(spec)
        .addConfigs(tableIvConfigs())
        .addEvaluator("rppm")
        .profileDirectory(dir.str());
    const StudyResult fromDisk = reloaded.run();

    const ProfileCache::Stats stats = reloaded.profiles().stats();
    EXPECT_EQ(stats.diskHits, 1u);
    EXPECT_EQ(stats.misses, 0u);

    ASSERT_EQ(memory.cells().size(), fromDisk.cells().size());
    for (size_t i = 0; i < memory.cells().size(); ++i) {
        EXPECT_DOUBLE_EQ(memory.cells()[i].cycles,
                         fromDisk.cells()[i].cycles) << i;
        EXPECT_DOUBLE_EQ(memory.cells()[i].seconds,
                         fromDisk.cells()[i].seconds) << i;
        // Per-thread detail is bit-identical too.
        const auto &a = memory.cells()[i].prediction;
        const auto &b = fromDisk.cells()[i].prediction;
        ASSERT_EQ(a.has_value(), b.has_value());
        ASSERT_EQ(a->threads.size(), b->threads.size());
        for (size_t t = 0; t < a->threads.size(); ++t) {
            EXPECT_DOUBLE_EQ(a->threads[t].activeCycles,
                             b->threads[t].activeCycles);
        }
    }

    // The serialized artifact lives where pathFor says.
    ProfileCache probe;
    probe.setDirectory(dir.str());
    EXPECT_TRUE(std::filesystem::exists(probe.pathFor(spec.name, {})));
}

TEST(ProfileCache, ClearMemoryForcesDiskReload)
{
    const TempDir dir("clear");
    ProfileCache cache;
    cache.setDirectory(dir.str());

    const WorkloadSpec spec = cacheSpec("cache-clear");
    const WorkloadTrace trace = generateWorkload(spec);
    auto compute = [&] { return profileWorkload(trace); };

    cache.getOrCompute(spec.name, {}, compute);
    cache.clearMemory();
    cache.getOrCompute(spec.name, {}, compute);

    const ProfileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.diskHits, 1u);
}

TEST(ProfileCache, FailedComputationIsRetriable)
{
    ProfileCache cache;
    EXPECT_THROW(
        cache.getOrCompute("flaky", {},
                           []() -> WorkloadProfile {
                               throw std::runtime_error("profiler died");
                           }),
        std::runtime_error);

    // The failure was not cached: a later attempt succeeds.
    const WorkloadSpec spec = cacheSpec("flaky");
    const auto profile = cache.getOrCompute("flaky", {}, [&] {
        return profileWorkload(generateWorkload(spec));
    });
    EXPECT_EQ(profile->name, "flaky");
}

// ----------------------------------------------- byte-budgeted tier ---

TEST(ProfileCache, UnlimitedBudgetNeverEvicts)
{
    ProfileCache cache;
    for (const char *name : {"evict-a", "evict-b", "evict-c"}) {
        const WorkloadSpec spec = cacheSpec(name);
        cache.getOrCompute(name, {},
                           [&] { return profileWorkload(generateWorkload(spec)); });
    }
    const ProfileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_GT(stats.residentBytes, 0u);
}

TEST(ProfileCache, BudgetEvictsLeastRecentlyUsed)
{
    ProfileCache cache;
    int computations = 0;
    auto computeFor = [&](const char *name) {
        return [&, name] {
            ++computations;
            return profileWorkload(generateWorkload(cacheSpec(name)));
        };
    };
    const auto a = cache.getOrCompute("evict-a", {}, computeFor("evict-a"));

    // A budget that fits roughly one profile: adding a second must push
    // the least-recently-used one out.
    cache.setMaxResidentBytes(a->approxResidentBytes() +
                              a->approxResidentBytes() / 2);
    cache.getOrCompute("evict-b", {}, computeFor("evict-b"));
    EXPECT_GE(cache.stats().evictions, 1u);

    // "evict-a" was evicted, so asking again recomputes...
    EXPECT_EQ(computations, 2);
    cache.getOrCompute("evict-a", {}, computeFor("evict-a"));
    EXPECT_EQ(computations, 3);

    // ...while holders of the old shared_ptr keep a live profile.
    EXPECT_EQ(a->name, "evict-a");

    // The budget caps residency within one entry's slack.
    EXPECT_LE(cache.stats().residentBytes,
              cache.maxResidentBytes() + a->approxResidentBytes());
}

TEST(ProfileCache, TouchRefreshesRecency)
{
    ProfileCache cache;
    int computations = 0;
    auto computeFor = [&](const char *name) {
        return [&, name] {
            ++computations;
            return profileWorkload(generateWorkload(cacheSpec(name)));
        };
    };
    const auto a = cache.getOrCompute("lru-a", {}, computeFor("lru-a"));
    cache.setMaxResidentBytes(2 * a->approxResidentBytes() +
                              a->approxResidentBytes() / 2);
    cache.getOrCompute("lru-b", {}, computeFor("lru-b"));

    // Touch "lru-a" so "lru-b" becomes the LRU victim of the next add.
    cache.getOrCompute("lru-a", {}, computeFor("lru-a"));
    cache.getOrCompute("lru-c", {}, computeFor("lru-c"));

    EXPECT_EQ(computations, 3);
    cache.getOrCompute("lru-a", {}, computeFor("lru-a")); // still resident
    EXPECT_EQ(computations, 3);
    cache.getOrCompute("lru-b", {}, computeFor("lru-b")); // was evicted
    EXPECT_EQ(computations, 4);
}

TEST(MemoPool, BudgetEvictsWholeEngines)
{
    const auto profileFor = [](const char *name) {
        return std::make_shared<const WorkloadProfile>(
            profileWorkload(generateWorkload(cacheSpec(name))));
    };
    const auto pa = profileFor("memo-a");
    const auto pb = profileFor("memo-b");

    PredictionMemoPool pool;
    const auto ea = pool.forProfile(pa);
    EXPECT_EQ(pool.forProfile(pa).get(), ea.get());

    // Budget below one engine's footprint: each forProfile evicts the
    // other engine, but outstanding shared_ptrs stay fully usable.
    pool.setMaxResidentBytes(ea->approxResidentBytes() / 2);
    EXPECT_GE(pool.poolStats().evictions, 1u);
    const auto eb = pool.forProfile(pb);
    const auto ea2 = pool.forProfile(pa);
    EXPECT_NE(ea2.get(), ea.get()); // rebuilt after eviction
    EXPECT_GE(pool.poolStats().evictions, 2u);

    // Evicted-then-rebuilt engines still predict bit-identically.
    const MulticoreConfig cfg = baseConfig();
    const RppmPrediction before = ea->predict(cfg);
    const RppmPrediction after = ea2->predict(cfg);
    EXPECT_EQ(before.totalCycles, after.totalCycles);
    EXPECT_EQ(before.threadSeconds, after.threadSeconds);
    (void)eb;
}

} // namespace
} // namespace rppm

/**
 * @file
 * Unit tests for src/trace: record semantics, builder behaviour and
 * trace-level structural validation.
 */

#include <gtest/gtest.h>

#include "trace/trace.hh"
#include "trace/trace_builder.hh"

namespace rppm {
namespace {

TEST(TraceRecord, Predicates)
{
    TraceRecord op;
    op.op = OpClass::Load;
    EXPECT_TRUE(op.isMem());
    EXPECT_FALSE(op.isSync());
    EXPECT_FALSE(op.isBranch());

    TraceRecord br;
    br.op = OpClass::Branch;
    EXPECT_TRUE(br.isBranch());
    EXPECT_FALSE(br.isMem());

    TraceRecord sync;
    sync.sync = SyncType::BarrierWait;
    sync.op = OpClass::Load; // op class is ignored for sync records
    EXPECT_TRUE(sync.isSync());
    EXPECT_FALSE(sync.isMem());
    EXPECT_FALSE(sync.isBranch());
}

TEST(TraceRecord, OpClassNames)
{
    EXPECT_STREQ(opClassName(OpClass::Load), "Load");
    EXPECT_STREQ(opClassName(OpClass::Branch), "Branch");
    EXPECT_STREQ(opClassName(OpClass::FpDiv), "FpDiv");
}

TEST(TraceRecord, SyncTypeNames)
{
    EXPECT_STREQ(syncTypeName(SyncType::BarrierWait), "BarrierWait");
    EXPECT_STREQ(syncTypeName(SyncType::CondMarker), "CondMarker");
    EXPECT_STREQ(syncTypeName(SyncType::None), "None");
}

TEST(TraceBuilder, CountsOpsNotSyncs)
{
    ThreadTrace trace;
    ThreadTraceBuilder b(trace);
    b.op(OpClass::IntAlu, 0x40);
    b.load(0x1000, 0x44);
    b.sync(SyncType::BarrierWait, 1);
    b.store(0x2000, 0x48);
    b.branch(0x4c, true);
    EXPECT_EQ(b.numOps(), 4u);
    EXPECT_EQ(b.size(), 5u);
    EXPECT_EQ(trace.numOps(), 4u);
}

TEST(TraceBuilder, RecordFieldsPreserved)
{
    ThreadTrace trace;
    ThreadTraceBuilder b(trace);
    b.load(0xdeadbeef, 0x400, 3, 7);
    const TraceRecord &rec = trace.records[0];
    EXPECT_EQ(rec.addr, 0xdeadbeefu);
    EXPECT_EQ(rec.pc, 0x400u);
    EXPECT_EQ(rec.dep1, 3u);
    EXPECT_EQ(rec.dep2, 7u);
    EXPECT_EQ(rec.op, OpClass::Load);
}

TEST(WorkloadTrace, CountSync)
{
    WorkloadTrace trace;
    trace.threads.resize(2);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::ThreadCreate, 1);
    main.sync(SyncType::BarrierWait, 5);
    main.sync(SyncType::ThreadJoin, 1);
    ThreadTraceBuilder worker(trace.threads[1]);
    worker.sync(SyncType::BarrierWait, 5);
    EXPECT_EQ(trace.countSync(SyncType::BarrierWait), 2u);
    EXPECT_EQ(trace.countSync(SyncType::ThreadCreate), 1u);
    EXPECT_EQ(trace.countSync(SyncType::MutexLock), 0u);
}

TEST(WorkloadTrace, ValidateAcceptsWellFormed)
{
    WorkloadTrace trace;
    trace.threads.resize(2);
    ThreadTraceBuilder main(trace.threads[0]);
    main.op(OpClass::IntAlu, 0);
    main.sync(SyncType::ThreadCreate, 1);
    main.sync(SyncType::ThreadJoin, 1);
    ThreadTraceBuilder worker(trace.threads[1]);
    worker.sync(SyncType::MutexLock, 9);
    worker.op(OpClass::IntAlu, 4);
    worker.sync(SyncType::MutexUnlock, 9);
    EXPECT_NO_THROW(trace.validate());
}

TEST(WorkloadTrace, ValidateRejectsUncreatedThread)
{
    WorkloadTrace trace;
    trace.threads.resize(2);
    ThreadTraceBuilder worker(trace.threads[1]);
    worker.op(OpClass::IntAlu, 0);
    EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(WorkloadTrace, ValidateRejectsUnbalancedMutex)
{
    WorkloadTrace trace;
    trace.threads.resize(1);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::MutexLock, 1);
    EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(WorkloadTrace, ValidateRejectsUnlockWithoutLock)
{
    WorkloadTrace trace;
    trace.threads.resize(1);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::MutexUnlock, 1);
    EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(WorkloadTrace, ValidateRejectsRecursiveLock)
{
    WorkloadTrace trace;
    trace.threads.resize(1);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::MutexLock, 1);
    main.sync(SyncType::MutexLock, 1);
    main.sync(SyncType::MutexUnlock, 1);
    main.sync(SyncType::MutexUnlock, 1);
    EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(WorkloadTrace, ValidateRejectsDoubleJoin)
{
    WorkloadTrace trace;
    trace.threads.resize(2);
    ThreadTraceBuilder main(trace.threads[0]);
    main.sync(SyncType::ThreadCreate, 1);
    main.sync(SyncType::ThreadJoin, 1);
    main.sync(SyncType::ThreadJoin, 1);
    ThreadTraceBuilder worker(trace.threads[1]);
    worker.op(OpClass::IntAlu, 0);
    EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(WorkloadTrace, ValidateRejectsEmpty)
{
    WorkloadTrace trace;
    EXPECT_THROW(trace.validate(), std::invalid_argument);
}

TEST(WorkloadTrace, TotalOpsSumsThreads)
{
    WorkloadTrace trace;
    trace.threads.resize(2);
    ThreadTraceBuilder main(trace.threads[0]);
    main.op(OpClass::IntAlu, 0);
    main.op(OpClass::IntAlu, 4);
    main.sync(SyncType::ThreadCreate, 1);
    ThreadTraceBuilder worker(trace.threads[1]);
    worker.op(OpClass::IntAlu, 8);
    EXPECT_EQ(trace.totalOps(), 3u);
}

} // namespace
} // namespace rppm

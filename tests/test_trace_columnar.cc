/**
 * @file
 * Tests for the columnar trace engine and the fused profiler:
 *
 *  - AoS <-> columnar conversion is lossless;
 *  - binary trace serialization round-trips bit-identically and rejects
 *    old-version, truncated and corrupt input cleanly;
 *  - the fused single-pass profiler produces profiles bit-identical to
 *    the legacy multi-pass reference on every workload kernel of the
 *    suite (byte-compared through the deterministic text serializer);
 *  - the binary profile format round-trips exactly (predictions and
 *    bytes) and the ProfileCache self-heals corrupt or legacy-format
 *    artifacts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "profile/profiler.hh"
#include "profile/serialize.hh"
#include "rppm/predictor.hh"
#include "sim/sync_state.hh"
#include "study/profile_cache.hh"
#include "trace/columnar.hh"
#include "trace/trace_builder.hh"
#include "trace/trace_io.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

/** A small but structurally rich workload (barriers, critical sections,
 *  a producer-consumer queue, shared data). */
WorkloadSpec
richSpec(const char *name = "columnar-test")
{
    WorkloadSpec spec = barrierLoopSpec(3, 4, 2500);
    spec.name = name;
    spec.csPerEpoch = 2;
    spec.queueItems = 5;
    spec.kernel.sharedFrac = 0.2;
    spec.kernel.branchEntropy = 0.1;
    return spec;
}

std::string
serializeTrace(const ColumnarTrace &trace)
{
    std::stringstream ss;
    saveTrace(trace, ss);
    return ss.str();
}

std::string
serializeProfileText(const WorkloadProfile &profile)
{
    std::stringstream ss;
    saveProfile(profile, ss);
    return ss.str();
}

TEST(Columnar, ConversionIsLossless)
{
    const WorkloadTrace trace = generateWorkload(richSpec());
    const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);

    EXPECT_EQ(cols.numThreads(), trace.numThreads());
    EXPECT_EQ(cols.totalOps(), trace.totalOps());
    for (SyncType type :
         {SyncType::BarrierWait, SyncType::MutexLock, SyncType::QueuePush,
          SyncType::ThreadCreate, SyncType::ThreadJoin}) {
        EXPECT_EQ(cols.countSync(type), trace.countSync(type))
            << syncTypeName(type);
    }

    // AoS -> columnar -> AoS -> columnar is a fixed point.
    const WorkloadTrace back = cols.toWorkload();
    EXPECT_EQ(back.name, trace.name);
    ASSERT_EQ(back.threads.size(), trace.threads.size());
    EXPECT_TRUE(ColumnarTrace::fromWorkload(back) == cols);
}

TEST(Columnar, CursorWalksRecordsInOrder)
{
    WorkloadTrace trace;
    trace.name = "cursor";
    trace.threads.resize(1);
    ThreadTraceBuilder b(trace.threads[0]);
    b.op(OpClass::IntAlu, 0x10);
    b.load(0x1000, 0x14, 1);
    b.sync(SyncType::MutexLock, 7);
    b.store(0x1040, 0x18);
    b.branch(0x1c, true, 2);
    b.sync(SyncType::MutexUnlock, 7);

    const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);
    ColumnCursor cur(cols.threads[0]);

    EXPECT_FALSE(cur.atSync());
    EXPECT_EQ(cur.op(), OpClass::IntAlu);
    cur.advance();
    EXPECT_EQ(cur.op(), OpClass::Load);
    EXPECT_EQ(cur.addr(), 0x1000u);
    EXPECT_EQ(cur.dep1(), 1);
    cur.advance();
    ASSERT_TRUE(cur.atSync());
    EXPECT_EQ(cur.syncType(), SyncType::MutexLock);
    EXPECT_EQ(cur.syncArg(), 7u);
    cur.advance();
    EXPECT_EQ(cur.op(), OpClass::Store);
    EXPECT_EQ(cur.addr(), 0x1040u);
    cur.advance();
    EXPECT_EQ(cur.op(), OpClass::Branch);
    EXPECT_TRUE(cur.taken());
    cur.advance();
    ASSERT_TRUE(cur.atSync());
    EXPECT_EQ(cur.syncType(), SyncType::MutexUnlock);
    cur.advance();
    EXPECT_TRUE(cur.atEnd());
}

TEST(Columnar, ValidateMatchesAoSValidate)
{
    const WorkloadTrace good = generateWorkload(richSpec());
    EXPECT_NO_THROW(good.validate());
    EXPECT_NO_THROW(
        ColumnarTrace::fromWorkload(good).validateAndBarrierPopulations());

    // Unbalanced mutex: both representations must reject it.
    WorkloadTrace bad;
    bad.threads.resize(1);
    ThreadTraceBuilder b(bad.threads[0]);
    b.op(OpClass::IntAlu, 0);
    b.sync(SyncType::MutexLock, 1);
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    EXPECT_THROW(
        ColumnarTrace::fromWorkload(bad).validateAndBarrierPopulations(),
        std::invalid_argument);
}

TEST(Columnar, BarrierPopulationsMatchLegacyScan)
{
    const WorkloadTrace trace = generateWorkload(richSpec());
    const auto legacy = barrierPopulations(trace);
    const auto fused = ColumnarTrace::fromWorkload(trace)
                           .validateAndBarrierPopulations();
    EXPECT_EQ(fused, legacy);
}

// ------------------------------------------------- binary trace I/O ---

TEST(TraceIo, RoundTripIsBitIdentical)
{
    const ColumnarTrace original =
        ColumnarTrace::fromWorkload(generateWorkload(richSpec()));
    const std::string bytes = serializeTrace(original);

    std::stringstream in(bytes);
    const ColumnarTrace loaded = loadTrace(in);
    EXPECT_TRUE(loaded == original);

    // save(load(save(t))) == save(t), byte for byte.
    EXPECT_TRUE(serializeTrace(loaded) == bytes);
}

TEST(TraceIo, FileRoundTrip)
{
    const ColumnarTrace original =
        ColumnarTrace::fromWorkload(generateWorkload(richSpec()));
    const std::string path = "/tmp/rppm_test_trace.rppmtrc";
    saveTraceToFile(original, path);
    const ColumnarTrace loaded = loadTraceFromFile(path);
    EXPECT_TRUE(loaded == original);
    std::filesystem::remove(path);
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream ss("definitely not a trace file");
    EXPECT_THROW(loadTrace(ss), std::invalid_argument);
}

TEST(TraceIo, RejectsOldVersion)
{
    std::string bytes = serializeTrace(
        ColumnarTrace::fromWorkload(generateWorkload(richSpec())));
    // The version field sits after the 8-byte magic and the 4-byte
    // endianness marker.
    bytes[12] = static_cast<char>(kTraceFormatVersion + 1);
    std::stringstream in(bytes);
    EXPECT_THROW(loadTrace(in), std::invalid_argument);
}

TEST(TraceIo, RejectsTruncatedInput)
{
    const std::string bytes = serializeTrace(
        ColumnarTrace::fromWorkload(generateWorkload(richSpec())));
    for (const double frac : {0.25, 0.5, 0.9}) {
        std::stringstream in(bytes.substr(
            0, static_cast<size_t>(static_cast<double>(bytes.size()) *
                                   frac)));
        EXPECT_THROW(loadTrace(in), std::invalid_argument) << frac;
    }
}

TEST(TraceIo, RejectsTrailingGarbage)
{
    std::string bytes = serializeTrace(
        ColumnarTrace::fromWorkload(generateWorkload(richSpec())));
    bytes += "garbage.";
    std::stringstream in(bytes);
    EXPECT_THROW(loadTrace(in), std::invalid_argument);
}

// ------------------------------------------- zero-copy mmap views ---

namespace {

/** Write raw bytes to a temp path and return the path. */
std::string
writeTempFile(const std::string &bytes, const char *name)
{
    const std::string path = std::string("/tmp/") + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
}

} // namespace

TEST(TraceView, BorrowedViewEqualsOwnedLoad)
{
    const ColumnarTrace original =
        ColumnarTrace::fromWorkload(generateWorkload(richSpec()));
    const std::string path =
        writeTempFile(serializeTrace(original), "rppm_test_view.rppmtrc");

    const ColumnarTrace owned = loadTraceFromFile(path);
    const ColumnarTrace view = loadTraceViewFromFile(path);

    // The view borrows the mmap image; the copying loader owns vectors.
    EXPECT_TRUE(view.isBorrowed());
    EXPECT_FALSE(owned.isBorrowed());
    EXPECT_NE(view.storage, nullptr);

    // Same trace either way, element-for-element and byte-for-byte.
    EXPECT_TRUE(view == owned);
    EXPECT_TRUE(view == original);
    EXPECT_TRUE(serializeTrace(view) == serializeTrace(owned));

    // Deep-copying the view drops the borrow and preserves content.
    const ColumnarTrace detached = view.toOwned();
    EXPECT_FALSE(detached.isBorrowed());
    EXPECT_TRUE(detached == original);

    std::filesystem::remove(path);
}

TEST(TraceView, ProfilesBitIdenticallyToOwnedLoad)
{
    const ColumnarTrace original =
        ColumnarTrace::fromWorkload(generateWorkload(richSpec()));
    const std::string path = writeTempFile(
        serializeTrace(original), "rppm_test_view_prof.rppmtrc");

    ProfilerOptions opts;
    opts.microTraceLength = 60;
    opts.microTraceInterval = 400;
    const WorkloadProfile fromView =
        profileWorkload(loadTraceViewFromFile(path), opts);
    const WorkloadProfile fromOwned =
        profileWorkload(loadTraceFromFile(path), opts);
    EXPECT_TRUE(serializeProfileText(fromView) ==
                serializeProfileText(fromOwned));

    std::filesystem::remove(path);
}

TEST(TraceView, RejectsExactlyWhatTheCopyLoaderRejects)
{
    const std::string bytes = serializeTrace(
        ColumnarTrace::fromWorkload(generateWorkload(richSpec())));
    const char *path_name = "rppm_test_view_bad.rppmtrc";

    // Bad magic.
    {
        const std::string path =
            writeTempFile("definitely not a trace file", path_name);
        EXPECT_THROW(loadTraceViewFromFile(path), std::invalid_argument);
    }
    // Old/unknown format version (field after magic + endian marker).
    {
        std::string bad = bytes;
        bad[12] = static_cast<char>(kTraceFormatVersion + 1);
        const std::string path = writeTempFile(bad, path_name);
        EXPECT_THROW(loadTraceViewFromFile(path), std::invalid_argument);
    }
    // Truncation at several depths.
    for (const double frac : {0.25, 0.5, 0.9}) {
        const std::string path = writeTempFile(
            bytes.substr(0, static_cast<size_t>(
                                static_cast<double>(bytes.size()) * frac)),
            path_name);
        EXPECT_THROW(loadTraceViewFromFile(path), std::invalid_argument)
            << frac;
    }
    // Trailing garbage.
    {
        const std::string path = writeTempFile(bytes + "garbage.", path_name);
        EXPECT_THROW(loadTraceViewFromFile(path), std::invalid_argument);
    }
    // Missing file is an I/O error, not a format error.
    EXPECT_THROW(loadTraceViewFromFile("/tmp/rppm_no_such_trace.rppmtrc"),
                 std::runtime_error);
    std::filesystem::remove(std::string("/tmp/") + path_name);
}

TEST(TraceView, ColumnBorrowSemantics)
{
    const std::vector<uint32_t> backing = {1, 2, 3, 4, 5};
    const Column<uint32_t> borrowed =
        Column<uint32_t>::borrow(backing.data(), backing.size());
    EXPECT_TRUE(borrowed.isBorrowed());
    EXPECT_EQ(borrowed.size(), backing.size());
    EXPECT_EQ(borrowed[3], 4u);

    // Copies of a borrowed column stay borrowed views of the same data.
    const Column<uint32_t> copy = borrowed;
    EXPECT_TRUE(copy.isBorrowed());
    EXPECT_EQ(copy.data(), backing.data());

    // Owned columns compare equal to borrowed ones by content.
    Column<uint32_t> owned;
    owned = backing;
    EXPECT_FALSE(owned.isBorrowed());
    EXPECT_TRUE(owned == borrowed);
    EXPECT_NE(owned.data(), borrowed.data());
}

// ------------------------------------ fused vs. legacy equivalence ---

TEST(FusedProfiler, BitIdenticalToLegacyOnEveryKernel)
{
    // The acceptance bar of the refactor: one text-serialized byte
    // mismatch anywhere in mix, histograms, micro-traces, branch counts
    // or sync structure fails this test. Kernels are scaled down to keep
    // the test fast; every suite entry is covered.
    for (const SuiteEntry &entry : fullSuite()) {
        WorkloadSpec spec = entry.spec;
        spec.opsPerEpoch = std::max<uint64_t>(1, spec.opsPerEpoch / 20);
        spec.initOps = std::max<uint64_t>(1, spec.initOps / 20);
        spec.finalOps = std::max<uint64_t>(1, spec.finalOps / 20);
        spec.itemOps = std::max<uint64_t>(1, spec.itemOps / 20);
        const WorkloadTrace trace = generateWorkload(spec);

        const WorkloadProfile legacy = profileWorkloadLegacy(trace);
        const WorkloadProfile fused = profileWorkload(trace);
        // EXPECT_TRUE rather than EXPECT_EQ: on failure gtest would try
        // to print two multi-hundred-kB strings.
        EXPECT_TRUE(serializeProfileText(fused) ==
                    serializeProfileText(legacy))
            << spec.name;
    }
}

TEST(FusedProfiler, ColumnarOverloadMatchesAoSOverload)
{
    const WorkloadTrace trace = generateWorkload(richSpec());
    const ColumnarTrace cols = ColumnarTrace::fromWorkload(trace);
    EXPECT_TRUE(serializeProfileText(profileWorkload(cols)) ==
                serializeProfileText(profileWorkload(trace)));
}

TEST(FusedProfiler, RespectsProfilerOptions)
{
    // The options that change profile content must keep fused == legacy.
    ProfilerOptions opts;
    opts.detectInvalidation = false;
    opts.quantum = 17;
    opts.microTraceLength = 64;
    opts.microTraceInterval = 500;
    const WorkloadTrace trace = generateWorkload(richSpec());
    EXPECT_TRUE(serializeProfileText(profileWorkload(trace, opts)) ==
                serializeProfileText(profileWorkloadLegacy(trace, opts)));
}

// ----------------------------------------------- binary profile I/O ---

TEST(ProfileBinary, RoundTripPredictsIdentically)
{
    const WorkloadProfile original =
        profileWorkload(generateWorkload(richSpec()));
    std::stringstream ss;
    saveProfileBinary(original, ss);
    const WorkloadProfile copy = loadProfileBinary(ss);

    for (const MulticoreConfig &cfg : tableIvConfigs()) {
        const RppmPrediction a = predict(original, cfg);
        const RppmPrediction b = predict(copy, cfg);
        EXPECT_DOUBLE_EQ(a.totalCycles, b.totalCycles) << cfg.name;
    }
}

TEST(ProfileBinary, DoubleRoundTripIsByteStable)
{
    const WorkloadProfile original =
        profileWorkload(generateWorkload(richSpec()));
    std::stringstream once, twice;
    saveProfileBinary(original, once);
    const WorkloadProfile copy = loadProfileBinary(once);
    saveProfileBinary(copy, twice);
    EXPECT_TRUE(once.str() == twice.str());
}

TEST(ProfileBinary, RejectsBadInput)
{
    const WorkloadProfile original =
        profileWorkload(generateWorkload(richSpec()));
    std::stringstream ss;
    saveProfileBinary(original, ss);
    std::string bytes = ss.str();

    {   // Old/newer version.
        std::string old = bytes;
        old[12] = static_cast<char>(kProfileFormatVersion + 3);
        std::stringstream in(old);
        EXPECT_THROW(loadProfileBinary(in), std::invalid_argument);
    }
    {   // Truncation.
        std::stringstream in(bytes.substr(0, bytes.size() / 2));
        EXPECT_THROW(loadProfileBinary(in), std::invalid_argument);
    }
    {   // Text-format profile fed to the binary loader.
        std::stringstream text;
        saveProfile(original, text);
        std::stringstream in(text.str());
        EXPECT_THROW(loadProfileBinary(in), std::invalid_argument);
    }
}

TEST(ProfileBinary, CacheSelfHealsCorruptAndLegacyArtifacts)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "rppm_columnar_heal";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    const WorkloadSpec spec = richSpec("heal-me");
    const WorkloadTrace trace = generateWorkload(spec);
    const WorkloadProfile reference = profileWorkload(trace);

    ProfileCache cache;
    cache.setDirectory(dir.string());
    const std::string path = cache.pathFor(spec.name, {});

    // Seed the artifact with a *legacy text-format* profile (what a
    // pre-binary checkout would have written), as the interesting case
    // of "old version on disk".
    saveProfileToFile(reference, path);

    int computations = 0;
    const auto healed = cache.getOrCompute(spec.name, {}, [&] {
        ++computations;
        return profileWorkload(trace);
    });
    EXPECT_EQ(computations, 1); // text artifact rejected, recomputed
    EXPECT_EQ(cache.stats().diskHits, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(healed->totalOps(), reference.totalOps());

    // The artifact was overwritten in the binary format: a fresh cache
    // now hits disk and predicts identically.
    ProfileCache fresh;
    fresh.setDirectory(dir.string());
    const auto from_disk = fresh.getOrCompute(spec.name, {}, [&] {
        ADD_FAILURE() << "should have loaded from disk";
        return profileWorkload(trace);
    });
    EXPECT_EQ(fresh.stats().diskHits, 1u);
    const RppmPrediction a = predict(reference, baseConfig());
    const RppmPrediction b = predict(*from_disk, baseConfig());
    EXPECT_DOUBLE_EQ(a.totalCycles, b.totalCycles);

    // Plain corruption self-heals the same way.
    {
        std::ofstream os(path, std::ios::binary);
        os << "corrupted beyond recognition";
    }
    ProfileCache corrupt;
    corrupt.setDirectory(dir.string());
    int recomputed = 0;
    corrupt.getOrCompute(spec.name, {}, [&] {
        ++recomputed;
        return profileWorkload(trace);
    });
    EXPECT_EQ(recomputed, 1);

    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace rppm

/**
 * @file
 * Unit tests for src/workload: kernel characteristics land where the
 * parameters aim, workload structure is well-formed, and the benchmark
 * suite matches the paper's setup.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>

#include "common/rng.hh"
#include "workload/kernel.hh"
#include "workload/suite.hh"
#include "workload/workload.hh"

namespace rppm {
namespace {

ThreadTrace
runKernel(const KernelParams &params, uint64_t ops, uint64_t seed = 7)
{
    ThreadTrace trace;
    ThreadTraceBuilder builder(trace);
    KernelGenerator gen(params, 0, 0x1000, Rng(seed));
    gen.emit(builder, ops);
    return trace;
}

TEST(Kernel, EmitsExactOpCount)
{
    const ThreadTrace t = runKernel(KernelParams{}, 12345);
    EXPECT_EQ(t.numOps(), 12345u);
    EXPECT_EQ(t.records.size(), 12345u); // kernels emit no sync records
}

TEST(Kernel, Deterministic)
{
    const ThreadTrace a = runKernel(KernelParams{}, 5000, 3);
    const ThreadTrace b = runKernel(KernelParams{}, 5000, 3);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].addr, b.records[i].addr);
        EXPECT_EQ(a.records[i].op, b.records[i].op);
        EXPECT_EQ(a.records[i].taken, b.records[i].taken);
    }
}

TEST(Kernel, InstructionMixMatchesParams)
{
    KernelParams p;
    p.fracBranch = 0.2;
    p.fracLoad = 0.3;
    p.fracStore = 0.1;
    p.sharedFrac = 0.0; // keep store ratio exact
    const ThreadTrace t = runKernel(p, 100000);
    std::unordered_map<OpClass, uint64_t> mix;
    for (const auto &rec : t.records)
        ++mix[rec.op];
    const double n = static_cast<double>(t.numOps());
    EXPECT_NEAR(mix[OpClass::Branch] / n, 0.2, 0.02);
    // Memory ops: (1 - branch) * (load + store) = 0.8 * 0.4 = 0.32.
    const double mem_frac =
        (mix[OpClass::Load] + mix[OpClass::Store]) / n;
    EXPECT_NEAR(mem_frac, 0.32, 0.02);
    // Stores are fracStore/(fracLoad+fracStore) = 25% of memory ops.
    const double store_share = static_cast<double>(mix[OpClass::Store]) /
        (mix[OpClass::Load] + mix[OpClass::Store]);
    EXPECT_NEAR(store_share, 0.25, 0.03);
}

TEST(Kernel, BranchEntropyHitsTarget)
{
    for (double target : {0.02, 0.1, 0.3}) {
        KernelParams p;
        p.fracBranch = 0.2;
        p.branchEntropy = target;
        const ThreadTrace t = runKernel(p, 200000);
        // Recompute entropy the way the profiler does.
        std::unordered_map<uint32_t, std::pair<uint64_t, uint64_t>> counts;
        for (const auto &rec : t.records) {
            if (rec.isBranch()) {
                auto &[taken, total] = counts[rec.pc];
                taken += rec.taken;
                ++total;
            }
        }
        double weighted = 0.0;
        uint64_t total_branches = 0;
        for (const auto &[pc, tc] : counts) {
            const double prob =
                static_cast<double>(tc.first) / static_cast<double>(tc.second);
            weighted += 2.0 * prob * (1.0 - prob) *
                static_cast<double>(tc.second);
            total_branches += tc.second;
        }
        const double entropy = weighted / static_cast<double>(total_branches);
        EXPECT_NEAR(entropy, target, 0.05) << "target " << target;
    }
}

TEST(Kernel, PrivateAddressesStayInRegion)
{
    KernelParams p;
    p.sharedFrac = 0.0;
    p.privateBytes = 1 << 20;
    const ThreadTrace t = runKernel(p, 50000);
    for (const auto &rec : t.records) {
        if (rec.isMem()) {
            EXPECT_GE(rec.addr, privateBase(0));
            EXPECT_LT(rec.addr, privateBase(0) + p.privateBytes);
        }
    }
}

TEST(Kernel, SharedFractionRespected)
{
    KernelParams p;
    p.sharedFrac = 0.4;
    p.reuseFrac = 0.0; // avoid hot-pool resampling skew
    const ThreadTrace t = runKernel(p, 100000);
    uint64_t shared = 0, total = 0;
    for (const auto &rec : t.records) {
        if (rec.isMem()) {
            ++total;
            shared += rec.addr >= kSharedBase;
        }
    }
    EXPECT_NEAR(static_cast<double>(shared) / total, 0.4, 0.03);
}

TEST(Kernel, WorkingSetBoundsUniqueLines)
{
    KernelParams p;
    p.sharedFrac = 0.0;
    p.privateBytes = 64 << 10; // 1024 lines
    p.randomFrac = 1.0;
    const ThreadTrace t = runKernel(p, 100000);
    std::set<uint64_t> lines;
    for (const auto &rec : t.records) {
        if (rec.isMem())
            lines.insert(rec.addr / 64);
    }
    EXPECT_LE(lines.size(), 1024u);
    EXPECT_GT(lines.size(), 500u); // random access should cover most
}

TEST(Kernel, CodeFootprintBoundsPcs)
{
    KernelParams p;
    p.codeFootprint = 256;
    const ThreadTrace t = runKernel(p, 10000);
    std::set<uint32_t> pcs;
    for (const auto &rec : t.records)
        pcs.insert(rec.pc);
    EXPECT_LE(pcs.size(), 256u);
}

TEST(Kernel, DependenceDistancesBounded)
{
    const ThreadTrace t = runKernel(KernelParams{}, 10000);
    for (size_t i = 0; i < t.records.size(); ++i) {
        EXPECT_LE(t.records[i].dep1, i);
        EXPECT_LE(t.records[i].dep2, i);
    }
}

// ------------------------------------------------------ generateWorkload ---

TEST(Workload, StructureValidates)
{
    WorkloadSpec spec;
    spec.numEpochs = 5;
    spec.opsPerEpoch = 1000;
    const WorkloadTrace trace = generateWorkload(spec);
    EXPECT_NO_THROW(trace.validate());
    EXPECT_EQ(trace.numThreads(), 4u);
}

TEST(Workload, Deterministic)
{
    WorkloadSpec spec;
    spec.numEpochs = 3;
    spec.opsPerEpoch = 2000;
    spec.csPerEpoch = 2;
    const WorkloadTrace a = generateWorkload(spec);
    const WorkloadTrace b = generateWorkload(spec);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (size_t t = 0; t < a.threads.size(); ++t) {
        ASSERT_EQ(a.threads[t].records.size(), b.threads[t].records.size());
        for (size_t i = 0; i < a.threads[t].records.size(); ++i) {
            EXPECT_EQ(a.threads[t].records[i].addr,
                      b.threads[t].records[i].addr);
        }
    }
}

TEST(Workload, BarrierCountMatchesSpec)
{
    WorkloadSpec spec;
    spec.numEpochs = 7;
    spec.numWorkers = 3;
    spec.mainWorks = true;
    const WorkloadTrace trace = generateWorkload(spec);
    // 4 participants x 7 epochs.
    EXPECT_EQ(trace.countSync(SyncType::BarrierWait), 28u);
}

TEST(Workload, CondVarFlavorEmitsMarkers)
{
    WorkloadSpec spec;
    spec.numEpochs = 4;
    spec.barrierFlavor = BarrierFlavor::CondVar;
    const WorkloadTrace trace = generateWorkload(spec);
    EXPECT_EQ(trace.countSync(SyncType::BarrierWait), 0u);
    EXPECT_EQ(trace.countSync(SyncType::CondBarrier), 16u);
    EXPECT_EQ(trace.countSync(SyncType::CondMarker), 16u);
}

TEST(Workload, CriticalSectionsBalanced)
{
    WorkloadSpec spec;
    spec.numEpochs = 3;
    spec.csPerEpoch = 5;
    const WorkloadTrace trace = generateWorkload(spec);
    EXPECT_EQ(trace.countSync(SyncType::MutexLock),
              trace.countSync(SyncType::MutexUnlock));
    EXPECT_EQ(trace.countSync(SyncType::MutexLock), 4u * 3u * 5u);
}

TEST(Workload, QueueItemsBalanced)
{
    WorkloadSpec spec;
    spec.numEpochs = 1;
    spec.queueItems = 17;
    spec.numWorkers = 3;
    const WorkloadTrace trace = generateWorkload(spec);
    EXPECT_EQ(trace.countSync(SyncType::QueuePush), 17u);
    EXPECT_EQ(trace.countSync(SyncType::QueuePop), 17u);
}

TEST(Workload, MainWorksFalseKeepsMainLight)
{
    WorkloadSpec spec;
    spec.mainWorks = false;
    spec.numWorkers = 4;
    spec.numEpochs = 4;
    spec.opsPerEpoch = 10000;
    spec.initOps = 1000;
    spec.finalOps = 100;
    spec.mainBookkeepingOps = 500;
    const WorkloadTrace trace = generateWorkload(spec);
    // Main: init + bookkeeping + final only.
    EXPECT_EQ(trace.threads[0].numOps(), 1600u);
    // Workers carry the epochs.
    EXPECT_GT(trace.threads[1].numOps(), 30000u);
}

TEST(Workload, ImbalanceSkewsThreads)
{
    WorkloadSpec spec;
    spec.imbalance = 0.8;
    spec.epochJitter = 0.0;
    spec.numEpochs = 4;
    spec.opsPerEpoch = 10000;
    spec.initOps = 0;
    spec.finalOps = 0;
    const WorkloadTrace trace = generateWorkload(spec);
    uint64_t min_ops = UINT64_MAX, max_ops = 0;
    for (const auto &t : trace.threads) {
        min_ops = std::min(min_ops, t.numOps());
        max_ops = std::max(max_ops, t.numOps());
    }
    EXPECT_GT(static_cast<double>(max_ops),
              1.3 * static_cast<double>(min_ops));
}

TEST(Workload, ApproxTotalOpsClose)
{
    WorkloadSpec spec;
    spec.numEpochs = 6;
    spec.opsPerEpoch = 5000;
    const WorkloadTrace trace = generateWorkload(spec);
    const double approx = static_cast<double>(spec.approxTotalOps());
    const double actual = static_cast<double>(trace.totalOps());
    EXPECT_NEAR(approx / actual, 1.0, 0.15);
}

TEST(Workload, BarrierLoopSpecShape)
{
    const WorkloadSpec spec = barrierLoopSpec(4, 10, 500);
    EXPECT_EQ(spec.numThreads(), 4u);
    EXPECT_EQ(spec.numEpochs, 10u);
    const WorkloadTrace trace = generateWorkload(spec);
    EXPECT_EQ(trace.countSync(SyncType::BarrierWait), 40u);
}

TEST(Workload, RejectsZeroWorkers)
{
    WorkloadSpec spec;
    spec.numWorkers = 0;
    EXPECT_THROW(generateWorkload(spec), std::invalid_argument);
}

// ---------------------------------------------------------------- Suite ---

TEST(Suite, RodiniaHasSixteenBenchmarks)
{
    const auto suite = rodiniaSuite();
    EXPECT_EQ(suite.size(), 16u);
    for (const auto &entry : suite) {
        EXPECT_EQ(entry.suite, "rodinia");
        // Rodinia: main + 3 workers, all working, barrier synchronized.
        EXPECT_EQ(entry.spec.numThreads(), 4u);
        EXPECT_TRUE(entry.spec.mainWorks);
    }
}

TEST(Suite, ParsecHasTenBenchmarks)
{
    const auto suite = parsecSuite();
    EXPECT_EQ(suite.size(), 10u);
    for (const auto &entry : suite)
        EXPECT_EQ(entry.suite, "parsec");
}

TEST(Suite, AllBenchmarksGenerateValidTraces)
{
    for (const auto &entry : fullSuite()) {
        WorkloadSpec spec = entry.spec;
        // Shrink for test speed while preserving structure.
        spec.opsPerEpoch = std::max<uint64_t>(200, spec.opsPerEpoch / 50);
        spec.initOps /= 10;
        spec.queueItems = std::min<uint32_t>(spec.queueItems, 30);
        spec.numEpochs = std::min<uint32_t>(spec.numEpochs, 10);
        const WorkloadTrace trace = generateWorkload(spec);
        EXPECT_NO_THROW(trace.validate()) << entry.spec.name;
        EXPECT_GT(trace.totalOps(), 0u) << entry.spec.name;
    }
}

TEST(Suite, FluidanimateIsCriticalSectionDominated)
{
    const auto entry = findBenchmark("Fluidanimate");
    ASSERT_TRUE(entry.has_value());
    EXPECT_GT(entry->spec.csPerEpoch, 50u);
}

TEST(Suite, StreamclusterParsecIsBarrierDominated)
{
    const auto entry = findBenchmark("Streamcluster");
    ASSERT_TRUE(entry.has_value());
    EXPECT_GT(entry->spec.numEpochs, 100u);
    EXPECT_EQ(entry->spec.barrierFlavor, BarrierFlavor::Classic);
}

TEST(Suite, JoinOnlyBenchmarksHaveNoBarriers)
{
    for (const char *name : {"Blackscholes", "Freqmine", "Swaptions"}) {
        const auto entry = findBenchmark(name);
        ASSERT_TRUE(entry.has_value()) << name;
        EXPECT_EQ(entry->spec.barrierFlavor, BarrierFlavor::None) << name;
        EXPECT_EQ(entry->spec.csPerEpoch, 0u) << name;
    }
}

TEST(Suite, FacesimUsesCondVarBarriers)
{
    const auto entry = findBenchmark("Facesim");
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->spec.barrierFlavor, BarrierFlavor::CondVar);
    EXPECT_TRUE(entry->spec.mainWorks);
}

TEST(Suite, FindBenchmarkMissReturnsNullopt)
{
    EXPECT_FALSE(findBenchmark("nonexistent").has_value());
}

TEST(Suite, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &entry : fullSuite())
        EXPECT_TRUE(names.insert(entry.spec.name).second)
            << "duplicate " << entry.spec.name;
}

} // namespace
} // namespace rppm

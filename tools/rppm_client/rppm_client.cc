/**
 * @file
 * rppm_client — query the rppmd prediction daemon.
 *
 * Submits one request per workload over a single connection and prints
 * each completed grid cell as a CSV row:
 *
 *   workload,config,cycles,seconds
 *
 * --local evaluates the same (workload, config-grid) in-process through
 * Study::run() with identical formatting, so `diff` between a daemon
 * run and a --local run is the byte-identity check the CI smoke job
 * performs.
 *
 * Usage:
 *   rppm_client --socket PATH [--workload NAME]... [--trace FILE]...
 *               [--configs table4|hetero|base] [--deadline-ms MS]
 *               [--local] [--shutdown]
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "arch/config.hh"
#include "server/client.hh"
#include "study/study.hh"
#include "trace/trace_io.hh"
#include "workload/suite.hh"

namespace {

using rppm::server::WorkloadRefKind;

struct Options
{
    std::string socket;
    std::vector<std::pair<WorkloadRefKind, std::string>> workloads;
    std::string configSet = "table4";
    uint32_t deadlineMs = 0;
    bool local = false;
    bool shutdown = false;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "  --workload NAME   suite benchmark to evaluate (repeatable)\n"
        "  --trace FILE      RPPMTRC file to evaluate (repeatable;\n"
        "                    the path is resolved on the *server*)\n"
        "  --configs SET     table4 | hetero | base (default table4)\n"
        "  --deadline-ms MS  per-request server-side deadline (0=none)\n"
        "  --local           evaluate in-process instead (identity check)\n"
        "  --shutdown        ask the daemon to drain and exit\n",
        argv0);
}

std::vector<rppm::MulticoreConfig>
configsFor(const std::string &set)
{
    if (set == "table4")
        return rppm::tableIvConfigs();
    if (set == "hetero")
        return rppm::heterogeneousConfigs();
    if (set == "base")
        return {rppm::baseConfig()};
    std::fprintf(stderr, "rppm_client: unknown config set '%s'\n",
                 set.c_str());
    std::exit(2);
}

void
printRow(const std::string &workload, const std::string &config,
         double cycles, double seconds)
{
    // %.17g round-trips doubles exactly: daemon and --local rows are
    // byte-comparable.
    std::printf("%s,%s,%.17g,%.17g\n", workload.c_str(), config.c_str(),
                cycles, seconds);
}

int
runLocal(const Options &opts)
{
    rppm::Study study;
    for (const auto &[kind, ref] : opts.workloads) {
        if (kind == WorkloadRefKind::SuiteName) {
            const auto entry = rppm::findBenchmark(ref);
            if (!entry) {
                std::fprintf(stderr,
                             "rppm_client: unknown suite benchmark '%s'\n",
                             ref.c_str());
                return 1;
            }
            study.addWorkload(*entry);
        } else {
            study.add(
                rppm::WorkloadSource(rppm::loadTraceViewFromFile(ref)));
        }
    }
    study.addConfigs(configsFor(opts.configSet));
    study.addEvaluator("rppm");
    const rppm::StudyResult result = study.run();
    for (const rppm::Evaluation &cell : result.cells())
        printRow(cell.workload, cell.config, cell.cycles, cell.seconds);
    return 0;
}

int
runRemote(const Options &opts)
{
    rppm::server::RppmClient client;
    client.connect(opts.socket);
    const std::vector<rppm::MulticoreConfig> configs =
        configsFor(opts.configSet);
    for (const auto &[kind, ref] : opts.workloads) {
        rppm::server::Query query;
        query.kind = kind;
        query.workload = ref;
        query.deadlineMs = opts.deadlineMs;
        query.configs = configs;
        const auto results = client.evaluate(query);
        for (const rppm::server::CellResult &cell : results)
            printRow(ref, cell.config, cell.cycles, cell.seconds);
    }
    if (opts.shutdown)
        client.shutdownServer();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "rppm_client: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            opts.socket = value();
        else if (arg == "--workload")
            opts.workloads.emplace_back(WorkloadRefKind::SuiteName,
                                        value());
        else if (arg == "--trace")
            opts.workloads.emplace_back(WorkloadRefKind::TracePath,
                                        value());
        else if (arg == "--configs")
            opts.configSet = value();
        else if (arg == "--deadline-ms")
            opts.deadlineMs =
                static_cast<uint32_t>(std::strtoul(value(), nullptr, 10));
        else if (arg == "--local")
            opts.local = true;
        else if (arg == "--shutdown")
            opts.shutdown = true;
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "rppm_client: unknown option %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (!opts.local && opts.socket.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (opts.workloads.empty() && !opts.shutdown) {
        usage(argv[0]);
        return 2;
    }

    try {
        return opts.local ? runLocal(opts) : runRemote(opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rppm_client: %s\n", e.what());
        return 1;
    }
}

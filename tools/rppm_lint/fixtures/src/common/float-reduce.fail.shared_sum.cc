// Accumulating a float into a captured variable from a forEach lambda:
// the reduction order follows worker scheduling, so the sum changes
// with the job count (and races without a lock).
#include <cstddef>
#include <vector>

struct Executor
{
    template <typename Fn>
    void forEach(size_t n, const Fn &fn) const
    {
        for (size_t i = 0; i < n; ++i)
            fn(i);
    }
};

double
total(const std::vector<double> &vals)
{
    const Executor executor;
    double sum = 0.0;
    executor.forEach(vals.size(), [&](size_t i) {
        sum += vals[i];
    });
    return sum;
}

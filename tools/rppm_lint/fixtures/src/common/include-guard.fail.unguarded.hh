// A header with no include guard at all.

inline int
twice(int x)
{
    return 2 * x;
}

// The house style: classic #ifndef/#define guard.
#ifndef RPPM_FIXTURE_GUARD_IFNDEF_HH
#define RPPM_FIXTURE_GUARD_IFNDEF_HH

inline int
twice(int x)
{
    return 2 * x;
}

#endif // RPPM_FIXTURE_GUARD_IFNDEF_HH

#pragma once

inline int
twice(int x)
{
    return 2 * x;
}

// A shared-accumulation waiver: legal when the enclosing forEach runs
// with one job by construction (the waiver reason must say why).
#include <cstddef>
#include <vector>

struct Executor
{
    template <typename Fn>
    void forEach(size_t n, const Fn &fn) const
    {
        for (size_t i = 0; i < n; ++i)
            fn(i);
    }
};

double
total(const std::vector<double> &vals)
{
    const Executor executor; // single-job executor in this fixture
    double sum = 0.0;
    executor.forEach(vals.size(), [&](size_t i) {
        // rppm-lint: deterministic-reduce(jobs=1 executor; index fold)
        sum += vals[i];
    });
    return sum;
}

// The sanctioned reduction: each task writes its own pre-sized slot,
// the fold happens sequentially afterwards — deterministic for any
// worker count.
#include <cstddef>
#include <vector>

struct Executor
{
    template <typename Fn>
    void forEach(size_t n, const Fn &fn) const
    {
        for (size_t i = 0; i < n; ++i)
            fn(i);
    }
};

double
total(const std::vector<double> &vals)
{
    const Executor executor;
    std::vector<double> partial(vals.size());
    executor.forEach(vals.size(), [&](size_t i) {
        double scaled = vals[i]; // lambda-local accumulation is fine
        scaled *= 2.0;
        partial[i] = scaled;
    });
    double sum = 0.0;
    for (const double p : partial)
        sum += p;
    return sum;
}

// using-namespace in a header pollutes every includer.
#ifndef RPPM_FIXTURE_USING_NAMESPACE_HH
#define RPPM_FIXTURE_USING_NAMESPACE_HH

#include <vector>

using namespace std;

inline size_t
count(const vector<int> &v)
{
    return v.size();
}

#endif // RPPM_FIXTURE_USING_NAMESPACE_HH

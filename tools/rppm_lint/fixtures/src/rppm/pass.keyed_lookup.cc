// Keyed lookups into unordered containers are fine — only iteration
// exposes the hash order.
#include <cstdint>
#include <unordered_map>

uint64_t
lookup(const std::unordered_map<uint32_t, uint64_t> &pops, uint32_t id)
{
    const auto it = pops.find(id);
    return it == pops.end() ? 0 : it->second;
}

// The same shape as the fail fixture, but the fold is order-independent
// (integer addition) and the line carries a reasoned waiver.
#include <cstdint>
#include <string>
#include <unordered_map>

uint64_t
total(const std::unordered_map<std::string, uint64_t> &counts)
{
    std::unordered_map<std::string, uint64_t> c = counts;
    uint64_t sum = 0;
    // rppm-lint: ordered-ok(integer addition is order-independent)
    for (const auto &[name, n] : c)
        sum += n;
    return sum;
}

// The sanctioned pattern: materialize the unordered container into an
// ordered std::map, then iterate that.
#include <cstdint>
#include <map>
#include <unordered_map>

double
fold(const std::unordered_map<uint32_t, double> &weights)
{
    // rppm-lint: ordered-ok(drained into a sorted map before iterating)
    const std::map<uint32_t, double> ordered(weights.begin(), weights.end());
    double sum = 0.0;
    for (const auto &[id, w] : ordered)
        sum = sum * 0.5 + w;
    return sum;
}

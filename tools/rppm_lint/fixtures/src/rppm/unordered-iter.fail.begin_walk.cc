// Explicit iterator walk over an unordered container.
#include <cstdint>
#include <unordered_set>

uint64_t
first(const std::unordered_set<uint64_t> &lines)
{
    std::unordered_set<uint64_t> live = lines;
    return live.empty() ? 0 : *live.begin(); // "first" depends on hashing
}

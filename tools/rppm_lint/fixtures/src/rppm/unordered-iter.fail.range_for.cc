// Range-for over a hash container in a result-affecting directory:
// iteration order is implementation-defined and leaks into the sum the
// loop builds in visit order.
#include <string>
#include <unordered_map>

double
total(const std::unordered_map<std::string, double> &weights)
{
    std::unordered_map<std::string, double> scaled = weights;
    double sum = 0.0;
    for (const auto &[name, w] : scaled)
        sum = sum * 0.5 + w; // order-dependent fold
    return sum;
}

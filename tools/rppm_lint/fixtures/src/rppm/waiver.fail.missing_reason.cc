// A waiver without a reason is itself a finding: the reason is the
// reviewable artifact.
#include <cstdint>
#include <string>
#include <unordered_map>

uint64_t
total(const std::unordered_map<std::string, uint64_t> &counts)
{
    std::unordered_map<std::string, uint64_t> c = counts;
    uint64_t sum = 0;
    // rppm-lint: ordered-ok()
    for (const auto &[name, n] : c)
        sum += n;
    return sum;
}

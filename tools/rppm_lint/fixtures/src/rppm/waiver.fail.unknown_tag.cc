// Unknown waiver tags are rejected — typos must not silently disable a
// rule.
#include <cstdint>

uint64_t
noop(uint64_t x)
{
    // rppm-lint: totally-fine(this tag does not exist)
    return x;
}

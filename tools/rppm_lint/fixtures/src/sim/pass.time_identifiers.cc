// Identifiers and members that merely *contain* rule tokens must not
// trip the word-boundary matching.
#include <cstdint>

struct ThreadResult
{
    double time = 0.0;
    double finishTime(double scale) const { return time * scale; }
};

double
runtime(const ThreadResult &t)
{
    const double lifetime = t.finishTime(2.0);
    return lifetime + t.time;
}

// Rule tokens inside comments and string literals are not code:
// rand(), srand, time(NULL), getenv all appear below, legally.
#include <string>

std::string
describe()
{
    // A simulator must never call rand() or time() — see README.
    return "no rand(), no getenv(\"X\"), no time() here";
}

// Environment reads hide configuration from the (workload, config) key
// that is supposed to fully determine a result.
#include <cstdlib>

bool
fastMode()
{
    return std::getenv("FAST") != nullptr;
}

// rand() in the simulator: nondeterministic results.
#include <cstdlib>

int
jitter()
{
    return std::rand() % 7;
}

// Wall-clock reads in a result path.
#include <ctime>

long
stamp()
{
    return static_cast<long>(time(nullptr));
}

// A result-neutral environment read (logging verbosity) with a reasoned
// waiver.
#include <cstdlib>

bool
quiet()
{
    // rppm-lint: rng-ok(gates a log line only; results are unaffected)
    return std::getenv("RPPM_QUIET") != nullptr;
}

// Outside the result-affecting directories, unordered iteration is
// legal (e.g. building an index whose order is later discarded).
#include <cstdint>
#include <unordered_map>
#include <vector>

std::vector<uint32_t>
ids(const std::unordered_map<uint32_t, uint64_t> &index)
{
    std::vector<uint32_t> out;
    for (const auto &[id, n] : index)
        out.push_back(id);
    return out;
}

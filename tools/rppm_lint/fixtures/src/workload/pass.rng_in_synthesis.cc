// Workload synthesis owns randomness (through the repo's deterministic
// RNG in production code; the raw calls are merely *allowed* here).
#include <cstdlib>

unsigned
synthesize(unsigned seed)
{
    std::srand(seed);
    return static_cast<unsigned>(std::rand());
}

/**
 * @file
 * rppm_lint — the in-tree determinism-invariant linter.
 *
 * The compiler (and clang's -Wthread-safety) can prove lock discipline;
 * it cannot see the project rules that keep every fast path bit-identical
 * to its reference implementation. This tool checks those rules at the
 * token level, file by file, and runs as a tier-1 CTest so violations
 * fail the build everywhere, not only on exercised code paths.
 *
 * Rules (ids in brackets; see README "Static analysis & invariants"):
 *
 *  [unordered-iter]  No iteration over std::unordered_map/unordered_set
 *                    in result-affecting directories (src/rppm,
 *                    src/profile, src/statstack, src/sim, src/simcore).
 *                    Hash-table iteration order is
 *                    implementation-defined; anything that folds it into
 *                    a result breaks bit-identity across libstdc++
 *                    versions. Keyed lookups are fine. Waive a provably
 *                    order-independent loop with
 *                    // rppm-lint: ordered-ok(reason).
 *
 *  [rng]             No rand()/srand/std::random_device/time(/getenv/
 *                    gettimeofday/clock_gettime outside src/workload
 *                    (synthesis owns its deterministic seeding) and
 *                    src/common/rng.*. Hidden entropy, wall-clock or
 *                    environment reads make profiles and predictions
 *                    irreproducible. Waive a result-neutral read with
 *                    // rppm-lint: rng-ok(reason).
 *
 *  [float-reduce]    No compound (+=, -=, *=) accumulation into a float
 *                    or double declared outside the loop body inside a
 *                    ParallelExecutor::forEach lambda. Float addition is
 *                    not associative, so a racy or scheduling-ordered
 *                    reduction silently changes results with the worker
 *                    count. Reduce into per-index slots and fold
 *                    sequentially, or waive a provably ordered reduction
 *                    with // rppm-lint: deterministic-reduce(reason).
 *
 *  [include-guard]   Every header carries #pragma once or a classic
 *                    #ifndef/#define guard near the top.
 *
 *  [using-namespace] No using-namespace directives in headers.
 *
 *  [waiver]          Every rppm-lint waiver must use a known tag and
 *                    carry a non-empty reason:
 *                    // rppm-lint: <tag>(<why this is safe>).
 *
 * Modes:
 *   rppm_lint --root <dir>        lint the tree under <dir>
 *   rppm_lint --self-test <dir>   fixture mode: *.fail.* files must
 *                                 produce >= 1 finding of the rule named
 *                                 by their filename prefix, *.pass.*
 *                                 files must produce none
 *   rppm_lint <file>...           lint individual files
 *
 * Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage/IO.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding
{
    std::string file;
    size_t line = 0; // 1-based
    std::string rule;
    std::string message;
};

/** One source line split into code and comment halves. */
struct Line
{
    std::string code;    ///< comments and literal contents blanked out
    std::string comment; ///< text of any comment on the line
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Split file text into per-line code/comment parts. String and char
 * literal contents are blanked in `code` (delimiters kept) so tokens
 * inside literals never match a rule; comment text is collected in
 * `comment` so waivers can be parsed from it.
 */
std::vector<Line>
splitLines(const std::string &text)
{
    std::vector<Line> lines(1);
    enum class St
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    } st = St::Code;
    std::string rawDelim; // raw-string closing delimiter ")delim"

    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            if (st == St::LineComment)
                st = St::Code;
            lines.emplace_back();
            continue;
        }
        Line &cur = lines.back();
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::LineComment;
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::BlockComment;
                ++i;
            } else if (c == 'R' && n == '"' &&
                       (i == 0 || !isIdentChar(text[i - 1]))) {
                // R"delim( ... )delim"
                size_t p = i + 2;
                std::string delim;
                while (p < text.size() && text[p] != '(')
                    delim.push_back(text[p++]);
                rawDelim = ")" + delim + "\"";
                cur.code += "R\"\"";
                i = p; // at '('; contents skipped by RawString state
                st = St::RawString;
            } else if (c == '"') {
                cur.code.push_back(c);
                st = St::String;
            } else if (c == '\'') {
                cur.code.push_back(c);
                st = St::Char;
            } else {
                cur.code.push_back(c);
            }
            break;
        case St::LineComment:
            cur.comment.push_back(c);
            break;
        case St::BlockComment:
            if (c == '*' && n == '/') {
                st = St::Code;
                ++i;
            } else {
                cur.comment.push_back(c);
            }
            break;
        case St::String:
            if (c == '\\')
                ++i;
            else if (c == '"') {
                cur.code.push_back(c);
                st = St::Code;
            }
            break;
        case St::Char:
            if (c == '\\')
                ++i;
            else if (c == '\'') {
                cur.code.push_back(c);
                st = St::Code;
            }
            break;
        case St::RawString:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1;
                st = St::Code;
            }
            break;
        }
    }
    return lines;
}

// --------------------------------------------------------------- waivers ---

const char *const kWaiverTags[] = {"ordered-ok", "rng-ok",
                                   "deterministic-reduce"};

struct Waiver
{
    std::string tag;
    bool valid = false; ///< known tag with a non-empty reason
};

/** Parse an rppm-lint waiver out of one line's comment text, if any. */
std::optional<Waiver>
parseWaiver(const std::string &comment)
{
    const size_t at = comment.find("rppm-lint:");
    if (at == std::string::npos)
        return std::nullopt;
    size_t p = at + std::string("rppm-lint:").size();
    while (p < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[p])))
        ++p;
    size_t tagEnd = p;
    while (tagEnd < comment.size() &&
           (isIdentChar(comment[tagEnd]) || comment[tagEnd] == '-'))
        ++tagEnd;
    Waiver w;
    w.tag = comment.substr(p, tagEnd - p);
    // "rppm-lint:" followed by no tag at all is prose about the waiver
    // syntax (e.g. this tool's own header comment), not a waiver attempt.
    if (w.tag.empty())
        return std::nullopt;
    const bool known =
        std::any_of(std::begin(kWaiverTags), std::end(kWaiverTags),
                    [&](const char *t) { return w.tag == t; });
    if (!known)
        return w;
    size_t open = tagEnd;
    while (open < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[open])))
        ++open;
    if (open >= comment.size() || comment[open] != '(')
        return w;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos)
        return w;
    std::string reason = comment.substr(open + 1, close - open - 1);
    const bool hasReason =
        std::any_of(reason.begin(), reason.end(), [](char c) {
            return !std::isspace(static_cast<unsigned char>(c));
        });
    w.valid = hasReason;
    return w;
}

// ------------------------------------------------------ name collection ---

/**
 * Names declared (or returned by a function declared) in this file with
 * an unordered_map/unordered_set type: scan for the token, balance the
 * template angle brackets, take the next identifier.
 */
std::set<std::string>
collectUnorderedNames(const std::vector<Line> &lines)
{
    std::string code;
    for (const Line &l : lines) {
        code += l.code;
        code.push_back('\n');
    }
    std::set<std::string> names;
    for (const char *tok : {"unordered_map", "unordered_set"}) {
        size_t pos = 0;
        while ((pos = code.find(tok, pos)) != std::string::npos) {
            const size_t after = pos + std::string(tok).size();
            if (pos > 0 && isIdentChar(code[pos - 1])) {
                pos = after;
                continue;
            }
            size_t p = after;
            while (p < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[p])))
                ++p;
            if (p >= code.size() || code[p] != '<') {
                pos = after;
                continue;
            }
            int depth = 0;
            for (; p < code.size(); ++p) {
                if (code[p] == '<')
                    ++depth;
                else if (code[p] == '>' && --depth == 0) {
                    ++p;
                    break;
                }
            }
            while (p < code.size() &&
                   (std::isspace(static_cast<unsigned char>(code[p])) ||
                    code[p] == '&' || code[p] == '*'))
                ++p;
            size_t q = p;
            while (q < code.size() && isIdentChar(code[q]))
                ++q;
            if (q > p)
                names.insert(code.substr(p, q - p));
            pos = q;
        }
    }
    return names;
}

/** Names declared in this file as bare float/double variables. */
std::set<std::string>
collectFloatNames(const std::string &codeLine, std::set<std::string> *out)
{
    for (const char *tok : {"float", "double"}) {
        size_t pos = 0;
        while ((pos = codeLine.find(tok, pos)) != std::string::npos) {
            const size_t after = pos + std::string(tok).size();
            const bool boundedL = pos == 0 || !isIdentChar(codeLine[pos - 1]);
            const bool boundedR =
                after >= codeLine.size() || !isIdentChar(codeLine[after]);
            if (!boundedL || !boundedR) {
                pos = after;
                continue;
            }
            size_t p = after;
            while (p < codeLine.size() &&
                   (std::isspace(static_cast<unsigned char>(codeLine[p])) ||
                    codeLine[p] == '&' || codeLine[p] == '*'))
                ++p;
            size_t q = p;
            while (q < codeLine.size() && isIdentChar(codeLine[q]))
                ++q;
            // `static_cast<double>(x)` / `vector<double>` leave no
            // identifier right after the closing of the type token.
            if (q > p) {
                const std::string name = codeLine.substr(p, q - p);
                if (name != "const")
                    out->insert(name);
            }
            pos = q > p ? q : after;
        }
    }
    return *out;
}

/** Last simple identifier in @p expr ("a.b[i].c" -> "c"), "" if none. */
std::string
trailingIdentifier(std::string expr)
{
    while (!expr.empty() &&
           (std::isspace(static_cast<unsigned char>(expr.back())) ||
            expr.back() == ')' || expr.back() == ']'))
        expr.pop_back();
    size_t end = expr.size();
    size_t begin = end;
    while (begin > 0 && isIdentChar(expr[begin - 1]))
        --begin;
    return expr.substr(begin, end - begin);
}

// ----------------------------------------------------------- file lint ---

struct FileClass
{
    bool header = false;
    bool resultDir = false;   ///< unordered-iter applies
    bool rngExempt = false;   ///< workload synthesis / the RNG itself
    bool srcTree = false;     ///< float-reduce applies
};

FileClass
classify(const std::string &path)
{
    FileClass fc;
    fc.header = path.ends_with(".hh") || path.ends_with(".hpp") ||
                path.ends_with(".h");
    for (const char *dir : {"src/rppm/", "src/profile/", "src/statstack/",
                            "src/sim/", "src/simcore/"}) {
        if (path.find(dir) != std::string::npos)
            fc.resultDir = true;
    }
    fc.rngExempt = path.find("src/workload/") != std::string::npos ||
                   path.find("src/common/rng") != std::string::npos ||
                   path.find("tests/") != std::string::npos;
    fc.srcTree = path.find("src/") != std::string::npos;
    return fc;
}

/** forEach-lambda extents, as [firstLine, lastLine] 0-based pairs. */
std::vector<std::pair<size_t, size_t>>
forEachExtents(const std::vector<Line> &lines)
{
    std::vector<std::pair<size_t, size_t>> extents;
    for (size_t i = 0; i < lines.size(); ++i) {
        const size_t at = lines[i].code.find("forEach");
        if (at == std::string::npos)
            continue;
        // Balance parens from the call's opening '(' across lines.
        int depth = 0;
        bool opened = false;
        size_t col = at;
        for (size_t j = i; j < lines.size(); ++j) {
            const std::string &code = lines[j].code;
            for (size_t k = j == i ? col : 0; k < code.size(); ++k) {
                if (code[k] == '(') {
                    ++depth;
                    opened = true;
                } else if (code[k] == ')' && opened && --depth == 0) {
                    extents.emplace_back(i, j);
                    j = lines.size();
                    break;
                }
            }
            if (j == lines.size())
                break;
        }
    }
    return extents;
}

void
lintFile(const std::string &displayPath, const std::string &text,
         std::vector<Finding> &findings)
{
    const FileClass fc = classify(displayPath);
    const std::vector<Line> lines = splitLines(text);

    // Waivers: a waiver covers its own line; a comment-only waiver line
    // covers the next line. Malformed waivers are findings themselves.
    std::vector<std::string> waiverAt(lines.size() + 1);
    for (size_t i = 0; i < lines.size(); ++i) {
        const auto w = parseWaiver(lines[i].comment);
        if (!w)
            continue;
        if (!w->valid) {
            findings.push_back(
                {displayPath, i + 1, "waiver",
                 "malformed waiver '" + w->tag +
                     "': use // rppm-lint: <tag>(<non-empty reason>) "
                     "with tag one of ordered-ok, rng-ok, "
                     "deterministic-reduce"});
            continue;
        }
        waiverAt[i] = w->tag;
        const bool commentOnly =
            std::all_of(lines[i].code.begin(), lines[i].code.end(),
                        [](char c) {
                            return std::isspace(
                                static_cast<unsigned char>(c));
                        });
        if (commentOnly && i + 1 < lines.size())
            waiverAt[i + 1] = w->tag;
    }
    const auto waived = [&](size_t i, const char *tag) {
        return waiverAt[i] == tag;
    };

    // --- [unordered-iter] ---------------------------------------------
    if (fc.resultDir) {
        const std::set<std::string> unordered = collectUnorderedNames(lines);
        for (size_t i = 0; i < lines.size(); ++i) {
            const std::string &code = lines[i].code;
            if (waived(i, "ordered-ok"))
                continue;
            // Range-for over an unordered container.
            size_t f = code.find("for");
            if (f != std::string::npos &&
                (f == 0 || !isIdentChar(code[f - 1])) &&
                (f + 3 >= code.size() || !isIdentChar(code[f + 3]))) {
                const size_t open = code.find('(', f);
                const size_t close = code.rfind(')');
                if (open != std::string::npos &&
                    close != std::string::npos && close > open) {
                    const std::string inside =
                        code.substr(open + 1, close - open - 1);
                    // The range expression follows the last single ':'.
                    size_t colon = std::string::npos;
                    for (size_t k = 0; k < inside.size(); ++k) {
                        if (inside[k] != ':')
                            continue;
                        if (k + 1 < inside.size() && inside[k + 1] == ':') {
                            ++k;
                            continue;
                        }
                        colon = k;
                    }
                    if (colon != std::string::npos) {
                        const std::string name =
                            trailingIdentifier(inside.substr(colon + 1));
                        if (unordered.count(name)) {
                            findings.push_back(
                                {displayPath, i + 1, "unordered-iter",
                                 "iteration over unordered container '" +
                                     name +
                                     "' in a result-affecting directory; "
                                     "iterate a sorted copy, or waive "
                                     "with // rppm-lint: "
                                     "ordered-ok(reason) if provably "
                                     "order-independent"});
                            continue;
                        }
                    }
                }
            }
            // Explicit iterator walks: NAME.begin() / NAME.cbegin().
            for (const char *b : {".begin", ".cbegin"}) {
                size_t at = code.find(b);
                while (at != std::string::npos) {
                    const std::string name =
                        trailingIdentifier(code.substr(0, at));
                    if (unordered.count(name)) {
                        findings.push_back(
                            {displayPath, i + 1, "unordered-iter",
                             "iterator over unordered container '" + name +
                                 "' in a result-affecting directory"});
                        break;
                    }
                    at = code.find(b, at + 1);
                }
            }
        }
    }

    // --- [rng] --------------------------------------------------------
    if (!fc.rngExempt) {
        struct Tok
        {
            const char *text;
            bool call; ///< must be followed by '('
        };
        const Tok toks[] = {{"rand", true},          {"srand", false},
                            {"random_device", false}, {"time", true},
                            {"getenv", false},        {"gettimeofday", false},
                            {"clock_gettime", false}};
        for (size_t i = 0; i < lines.size(); ++i) {
            if (waived(i, "rng-ok"))
                continue;
            const std::string &code = lines[i].code;
            for (const Tok &t : toks) {
                size_t at = code.find(t.text);
                const size_t len = std::string(t.text).size();
                bool hit = false;
                while (at != std::string::npos && !hit) {
                    const bool bl = at == 0 || !isIdentChar(code[at - 1]);
                    size_t after = at + len;
                    bool br = after >= code.size() ||
                              !isIdentChar(code[after]);
                    if (bl && br && t.call) {
                        while (after < code.size() &&
                               std::isspace(static_cast<unsigned char>(
                                   code[after])))
                            ++after;
                        br = after < code.size() && code[after] == '(';
                    }
                    if (bl && br)
                        hit = true;
                    else
                        at = code.find(t.text, at + 1);
                }
                if (hit) {
                    findings.push_back(
                        {displayPath, i + 1, "rng",
                         std::string("'") + t.text +
                             "' outside workload synthesis: hidden "
                             "entropy/time/environment reads break "
                             "reproducibility; waive a result-neutral "
                             "read with // rppm-lint: rng-ok(reason)"});
                }
            }
        }
    }

    // --- [float-reduce] -----------------------------------------------
    if (fc.srcTree) {
        std::set<std::string> floatNames;
        for (const Line &l : lines)
            collectFloatNames(l.code, &floatNames);
        for (const auto &[first, last] : forEachExtents(lines)) {
            // Names declared inside the extent are lambda-locals:
            // accumulating into those is scheduling-independent.
            std::set<std::string> localNames;
            for (size_t i = first; i <= last && i < lines.size(); ++i)
                collectFloatNames(lines[i].code, &localNames);
            for (size_t i = first; i <= last && i < lines.size(); ++i) {
                if (waived(i, "deterministic-reduce"))
                    continue;
                const std::string &code = lines[i].code;
                for (const char *op : {"+=", "-=", "*="}) {
                    const size_t at = code.find(op);
                    if (at == std::string::npos)
                        continue;
                    const std::string name =
                        trailingIdentifier(code.substr(0, at));
                    if (name.empty() || localNames.count(name))
                        continue;
                    if (floatNames.count(name)) {
                        findings.push_back(
                            {displayPath, i + 1, "float-reduce",
                             "float/double accumulation into '" + name +
                                 "' inside a forEach lambda: reduction "
                                 "order follows worker scheduling; "
                                 "reduce into per-index slots, or waive "
                                 "with // rppm-lint: "
                                 "deterministic-reduce(reason)"});
                    }
                }
            }
        }
    }

    // --- header hygiene ----------------------------------------------
    if (fc.header) {
        bool pragmaOnce = false, ifndef = false, define = false;
        for (const Line &l : lines) {
            if (l.code.find("#pragma once") != std::string::npos)
                pragmaOnce = true;
            if (l.code.find("#ifndef") != std::string::npos)
                ifndef = true;
            if (l.code.find("#define") != std::string::npos)
                define = true;
        }
        if (!pragmaOnce && !(ifndef && define)) {
            findings.push_back(
                {displayPath, 1, "include-guard",
                 "header lacks an include guard (#pragma once or "
                 "#ifndef/#define)"});
        }
        for (size_t i = 0; i < lines.size(); ++i) {
            const size_t at = lines[i].code.find("using namespace");
            if (at != std::string::npos) {
                findings.push_back(
                    {displayPath, i + 1, "using-namespace",
                     "using-namespace directive in a header leaks into "
                     "every includer"});
            }
        }
    }
}

// -------------------------------------------------------------- driving ---

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".hpp" ||
           ext == ".h";
}

std::optional<std::string>
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Tree mode: lint every source file under root's known subtrees. */
int
lintTree(const fs::path &root)
{
    std::vector<Finding> findings;
    std::vector<fs::path> files;
    for (const char *sub : {"src", "bench", "examples", "tests", "tools"}) {
        const fs::path dir = root / sub;
        if (!fs::exists(dir))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file() ||
                !lintableExtension(entry.path()))
                continue;
            // Fixture snippets intentionally violate the rules.
            if (entry.path().string().find("fixtures") != std::string::npos)
                continue;
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &f : files) {
        const auto text = readFile(f);
        if (!text) {
            std::cerr << "rppm_lint: cannot read " << f << "\n";
            return 2;
        }
        lintFile(fs::relative(f, root).generic_string(), *text, findings);
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line) < std::tie(b.file, b.line);
              });
    for (const Finding &f : findings) {
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    }
    std::cout << "rppm_lint: " << files.size() << " files, "
              << findings.size() << " finding(s)\n";
    return findings.empty() ? 0 : 1;
}

/**
 * Fixture mode. Filenames encode the expectation:
 *   <rule>.fail.<slug>.cc  must yield >= 1 finding with rule <rule>
 *   pass.<slug>.cc         must yield no findings
 */
int
selfTest(const fs::path &root)
{
    size_t checked = 0, failed = 0;
    std::vector<fs::path> files;
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintableExtension(entry.path()))
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &f : files) {
        const std::string name = f.filename().string();
        const size_t failAt = name.find(".fail.");
        const bool expectPass = name.rfind("pass.", 0) == 0;
        if (failAt == std::string::npos && !expectPass)
            continue; // not a fixture
        const auto text = readFile(f);
        if (!text) {
            std::cerr << "rppm_lint: cannot read " << f << "\n";
            return 2;
        }
        std::vector<Finding> findings;
        lintFile(fs::relative(f, root).generic_string(), *text, findings);
        ++checked;
        if (expectPass) {
            if (!findings.empty()) {
                ++failed;
                std::cout << "FAIL " << name
                          << ": expected clean, found:\n";
                for (const Finding &fi : findings)
                    std::cout << "  line " << fi.line << ": [" << fi.rule
                              << "] " << fi.message << "\n";
            }
            continue;
        }
        const std::string rule = name.substr(0, failAt);
        const bool hit =
            std::any_of(findings.begin(), findings.end(),
                        [&](const Finding &fi) { return fi.rule == rule; });
        if (!hit) {
            ++failed;
            std::cout << "FAIL " << name << ": expected a [" << rule
                      << "] finding, got " << findings.size()
                      << " finding(s)";
            for (const Finding &fi : findings)
                std::cout << " [" << fi.rule << "]";
            std::cout << "\n";
        }
    }
    std::cout << "rppm_lint self-test: " << checked << " fixtures, "
              << failed << " failure(s)\n";
    if (checked == 0) {
        std::cerr << "rppm_lint: no fixtures found under " << root << "\n";
        return 2;
    }
    return failed == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        std::cerr << "usage: rppm_lint --root <dir> | --self-test <dir> | "
                     "<file>...\n";
        return 2;
    }
    if (args[0] == "--root" || args[0] == "--self-test") {
        if (args.size() != 2) {
            std::cerr << "rppm_lint: " << args[0]
                      << " takes exactly one directory\n";
            return 2;
        }
        const fs::path root(args[1]);
        if (!fs::is_directory(root)) {
            std::cerr << "rppm_lint: not a directory: " << root << "\n";
            return 2;
        }
        return args[0] == "--root" ? lintTree(root) : selfTest(root);
    }

    std::vector<Finding> findings;
    for (const std::string &arg : args) {
        const auto text = readFile(arg);
        if (!text) {
            std::cerr << "rppm_lint: cannot read " << arg << "\n";
            return 2;
        }
        lintFile(fs::path(arg).generic_string(), *text, findings);
    }
    for (const Finding &f : findings) {
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    }
    return findings.empty() ? 0 : 1;
}

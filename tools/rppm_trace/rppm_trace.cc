/**
 * @file
 * rppm_trace — RPPMTRC container inspector and test-trace generator.
 *
 * Subcommands:
 *
 *   info FILE
 *     Index the container and print the header, per-thread record /
 *     memory / branch / sync counts, and per-column payload sizes. For
 *     checksummed (version >= 2) files every column's CRC32C trailer is
 *     printed and verified against the payload bytes (read in bounded
 *     spans, O(1) memory). Exits non-zero on a malformed or corrupt
 *     file, so it doubles as a cheap integrity validator in CI.
 *
 *   synth FILE --records N [--name NAME] [--sync-period P]
 *         [--corrupt-at OFF]
 *     Write a synthetic single-thread trace of N records with O(1)
 *     memory: columns stream through a small buffer, never resident.
 *     Exists so CI can manufacture a trace far larger than the memory
 *     cap it then profiles under (the out-of-core smoke test) without
 *     shipping multi-GiB fixtures. Every P-th record is a sync event
 *     (alternating MutexLock/MutexUnlock on mutex 0); all others are
 *     loads walking a 64 MiB window. --corrupt-at flips one bit at byte
 *     OFF after writing — a deliberate corruption for checksum tests
 *     and chaos CI.
 *
 *   profile FILE [--engine fused|streaming] [--stream-chunk N]
 *           [--jobs N] [--mti N]
 *     Profile the trace with the chosen engine and print a short
 *     summary. The fused engine materializes the whole file (mmap);
 *     the streaming engine reads it in chunks — under `ulimit -v` the
 *     former dies where the latter succeeds, which is exactly what the
 *     CI memory-cap job asserts.
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/binio.hh"
#include "common/crc32c.hh"
#include "common/mmap.hh"
#include "profile/profiler.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stream.hh"

namespace {

using namespace rppm;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: rppm_trace info FILE\n"
        "       rppm_trace synth FILE --records N [--name NAME]\n"
        "                  [--sync-period P] [--corrupt-at OFF]\n"
        "       rppm_trace profile FILE [--engine fused|streaming]\n"
        "                  [--stream-chunk N] [--jobs N] [--mti N]\n");
    return 2;
}

// ------------------------------------------------------------------ info ---

int
cmdInfo(const std::string &path)
{
    const FdFile file(path);
    const TraceFileLayout layout = indexTraceFile(file);

    std::printf("file:    %s\n", path.c_str());
    std::printf("bytes:   %" PRIu64 "\n", layout.fileSize);
    std::printf("version: %" PRIu32 "%s\n", layout.version,
                layout.hasBlockCrcs ? " (checksummed)" : "");
    std::printf("name:    %s\n", layout.name.c_str());
    std::printf("threads: %zu\n", layout.threads.size());

    uint64_t records = 0, mems = 0, branches = 0, syncs = 0;
    for (const ThreadLayout &th : layout.threads) {
        records += th.records;
        mems += th.addr.count;
        branches += th.taken.count;
        syncs += th.syncPos.count;
    }
    std::printf("records: %" PRIu64 "  (mem %" PRIu64 ", branch %" PRIu64
                ", sync %" PRIu64 ")\n",
                records, mems, branches, syncs);

    for (size_t t = 0; t < layout.threads.size(); ++t) {
        const ThreadLayout &th = layout.threads[t];
        std::printf("thread %zu: %" PRIu64 " records\n", t, th.records);
        const struct
        {
            const char *name;
            const ColumnExtent *ext;
            uint32_t elem;
        } cols[] = {
            {"op", &th.op, 1},          {"pc", &th.pc, 4},
            {"dep1", &th.dep1, 2},      {"dep2", &th.dep2, 2},
            {"addr", &th.addr, 8},      {"taken", &th.taken, 1},
            {"syncPos", &th.syncPos, 8}, {"syncType", &th.syncType, 1},
            {"syncArg", &th.syncArg, 4},
        };
        for (const auto &c : cols) {
            std::printf("  %-8s %12" PRIu64 " x %u = %12" PRIu64
                        " bytes @ %" PRIu64,
                        c.name, c.ext->count, c.elem,
                        c.ext->count * c.elem, c.ext->offset);
            if (layout.hasBlockCrcs)
                std::printf("  crc32c %08" PRIx32, c.ext->crc);
            std::printf("\n");
        }
    }

    // Verify every trailer against the actual payload bytes; throws
    // (→ exit 1) on a mismatch, so `info` doubles as an integrity check.
    const uint64_t checked = verifyTraceFileCrcs(file, layout);
    if (checked > 0)
        std::printf("checksums: %" PRIu64 " columns verified\n", checked);
    else
        std::printf("checksums: none (pre-checksum version %" PRIu32
                    " file)\n",
                    layout.version);
    return 0;
}

// ----------------------------------------------------------------- synth ---

/** Buffered container writer mirroring BinWriter's layout discipline
 *  (common/binio.hh) against a file stream, so column payloads can be
 *  generated on the fly instead of built in memory. */
class StreamWriter
{
  public:
    explicit StreamWriter(const std::string &path)
        : os_(path, std::ios::binary | std::ios::trunc)
    {
        if (!os_)
            throw std::runtime_error("cannot open " + path +
                                     " for writing");
        buf_.reserve(kBufBytes);
    }

    void
    raw(const void *p, size_t n)
    {
        const char *c = static_cast<const char *>(p);
        // Payload bytes written between beginBlock()/endBlock() fold
        // into the block's rolling CRC, mirroring BinWriter's trailer.
        if (inBlock_)
            crc_ = crc32cExtend(crc_, p, n);
        buf_.insert(buf_.end(), c, c + n);
        off_ += n;
        if (buf_.size() >= kBufBytes)
            flush();
    }

    void u32(uint32_t v) { raw(&v, sizeof(v)); }
    void u64(uint64_t v) { raw(&v, sizeof(v)); }

    void
    pad8()
    {
        static const char zeros[8] = {};
        raw(zeros, (8 - off_ % 8) % 8);
    }

    /** Block header for a column whose payload follows via raw(). The
     *  caller must write exactly count*elemSize payload bytes, then
     *  call endBlock(). */
    void
    beginBlock(uint32_t tag, uint32_t elemSize, uint64_t count)
    {
        pad8();
        u32(tag);
        u32(elemSize);
        u64(count);
        inBlock_ = true;
        crc_ = kCrc32cInit;
    }

    /** Pad the payload and emit the 8-byte CRC32C trailer. */
    void
    endBlock()
    {
        inBlock_ = false; // padding and trailer are not payload
        pad8();
        u32(crc_);
        u32(0); // reserved; keeps the trailer 8 bytes
    }

    void
    finish()
    {
        flush();
        os_.flush();
        if (!os_)
            throw std::runtime_error("trace write failed");
    }

  private:
    static constexpr size_t kBufBytes = size_t{1} << 20;

    void
    flush()
    {
        os_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        buf_.clear();
    }

    std::ofstream os_;
    std::vector<char> buf_;
    uint64_t off_ = 0;
    uint32_t crc_ = kCrc32cInit;
    bool inBlock_ = false;
};

/** Flip one bit at byte @p offset of @p path — deliberate corruption
 *  for checksum tests. */
void
corruptByteAt(const std::string &path, uint64_t offset)
{
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!f)
        throw std::runtime_error("cannot reopen " + path);
    f.seekg(0, std::ios::end);
    const uint64_t size = static_cast<uint64_t>(f.tellg());
    if (offset >= size)
        throw std::runtime_error("--corrupt-at offset past end of file");
    f.seekg(static_cast<std::streamoff>(offset));
    char b;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&b, 1);
    f.flush();
    if (!f)
        throw std::runtime_error("corrupting " + path + " failed");
    std::printf("corrupted byte at offset %" PRIu64 "\n", offset);
}

int
cmdSynth(const std::string &path, uint64_t records,
         const std::string &name, uint64_t syncPeriod, int64_t corruptAt)
{
    if (records == 0 || syncPeriod < 2) {
        std::fprintf(stderr,
                     "rppm_trace: need --records >= 1, --sync-period "
                     ">= 2\n");
        return 2;
    }

    // Sync events at records P, 2P, 3P, ... — strictly ascending, never
    // record 0 — alternating MutexLock/MutexUnlock on mutex 0. Truncate
    // to an even count so the mutex ends released.
    uint64_t numSync = (records - 1) / syncPeriod;
    numSync &= ~uint64_t{1};
    const uint64_t numMems = records - numSync; // every other record loads

    const auto isSyncPos = [&](uint64_t i) {
        return i > 0 && i % syncPeriod == 0 &&
            i / syncPeriod <= numSync;
    };

    StreamWriter out(path);
    out.raw(kTraceMagic, 8);
    out.u32(kBinEndianMarker);
    out.u32(kTraceFormatVersion);
    out.u64(name.size());
    out.raw(name.data(), name.size());
    out.pad8();
    out.u64(1); // one thread
    out.u64(records);

    // op: Load everywhere, IntAlu in sync slots.
    out.beginBlock(kTagOp, 1, records);
    for (uint64_t i = 0; i < records; ++i) {
        const uint8_t op = static_cast<uint8_t>(
            isSyncPos(i) ? OpClass::IntAlu : OpClass::Load);
        out.raw(&op, 1);
    }
    out.endBlock();

    // pc: a small rotating text segment; 0 in sync slots.
    out.beginBlock(kTagPc, 4, records);
    for (uint64_t i = 0; i < records; ++i) {
        const uint32_t pc =
            isSyncPos(i) ? 0 : 0x1000 + (static_cast<uint32_t>(i) & 0xfff);
        out.raw(&pc, 4);
    }
    out.endBlock();

    // dep1/dep2: all zero (no register dependences).
    for (const uint32_t tag : {kTagDep1, kTagDep2}) {
        out.beginBlock(tag, 2, records);
        const uint16_t zero = 0;
        for (uint64_t i = 0; i < records; ++i)
            out.raw(&zero, 2);
        out.endBlock();
    }

    // addr: a stride-64 walk over a 64 MiB window, one entry per load.
    out.beginBlock(kTagAddr, 8, numMems);
    for (uint64_t i = 0, m = 0; i < records; ++i) {
        if (isSyncPos(i))
            continue;
        const uint64_t addr = (m++ * 64) & ((uint64_t{64} << 20) - 1);
        out.raw(&addr, 8);
    }
    out.endBlock();

    // taken: no branches.
    out.beginBlock(kTagTaken, 1, 0);
    out.endBlock();

    out.beginBlock(kTagSyncPos, 8, numSync);
    for (uint64_t k = 1; k <= numSync; ++k)
        out.u64(k * syncPeriod);
    out.endBlock();

    out.beginBlock(kTagSyncTyp, 1, numSync);
    for (uint64_t k = 1; k <= numSync; ++k) {
        const uint8_t type = static_cast<uint8_t>(
            k % 2 == 1 ? SyncType::MutexLock : SyncType::MutexUnlock);
        out.raw(&type, 1);
    }
    out.endBlock();

    out.beginBlock(kTagSyncArg, 4, numSync);
    const uint32_t mutex0 = 0;
    for (uint64_t k = 0; k < numSync; ++k)
        out.raw(&mutex0, 4);
    out.endBlock();

    out.finish();
    std::printf("wrote %s: %" PRIu64 " records (%" PRIu64 " loads, %"
                PRIu64 " sync events)\n",
                path.c_str(), records, numMems, numSync);
    if (corruptAt >= 0)
        corruptByteAt(path, static_cast<uint64_t>(corruptAt));
    return 0;
}

// --------------------------------------------------------------- profile ---

int
cmdProfile(const std::string &path, const std::string &engine,
           const ProfilerOptions &opts)
{
    WorkloadProfile profile;
    if (engine == "fused") {
        profile = profileWorkloadFused(loadTraceViewFromFile(path), opts);
    } else if (engine == "streaming") {
        profile = profileWorkloadStreamingFile(path, opts);
    } else {
        std::fprintf(stderr, "rppm_trace: unknown engine '%s'\n",
                     engine.c_str());
        return 2;
    }

    uint64_t epochs = 0;
    for (const auto &t : profile.threads)
        epochs += t.epochs.size();
    std::printf("profiled %s [%s]: %u threads, %" PRIu64 " epochs, %"
                PRIu64 " ops\n",
                profile.name.c_str(), engine.c_str(), profile.numThreads,
                epochs, profile.totalOps());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    const std::string path = argv[2];

    // Shared option scan for the flag-taking subcommands.
    uint64_t records = 0;
    uint64_t syncPeriod = uint64_t{1} << 20;
    std::string name = "synthetic";
    std::string engine = "streaming";
    int64_t corruptAt = -1;
    ProfilerOptions opts;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "rppm_trace: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--records")
            records = std::strtoull(value(), nullptr, 10);
        else if (arg == "--sync-period")
            syncPeriod = std::strtoull(value(), nullptr, 10);
        else if (arg == "--name")
            name = value();
        else if (arg == "--engine")
            engine = value();
        else if (arg == "--stream-chunk")
            opts.streamChunkRecords = std::strtoull(value(), nullptr, 10);
        else if (arg == "--jobs")
            opts.jobs =
                static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
        else if (arg == "--mti")
            opts.microTraceInterval = std::strtoull(value(), nullptr, 10);
        else if (arg == "--corrupt-at")
            corruptAt = static_cast<int64_t>(
                std::strtoll(value(), nullptr, 10));
        else
            return usage();
    }

    try {
        if (cmd == "info")
            return cmdInfo(path);
        if (cmd == "synth")
            return cmdSynth(path, records, name, syncPeriod, corruptAt);
        if (cmd == "profile")
            return cmdProfile(path, engine, opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rppm_trace: %s\n", e.what());
        return 1;
    }
    return usage();
}

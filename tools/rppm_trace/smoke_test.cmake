# Round-trip smoke for rppm_trace: synth -> info -> profile with both
# engines. Invoked by CTest (see CMakeLists.txt).
set(trace "${WORK_DIR}/smoke.rppmtrc")

function(run)
    execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        list(JOIN ARGV " " cmdline)
        message(FATAL_ERROR "command failed (${rc}): ${cmdline}")
    endif()
endfunction()

run(${RPPM_TRACE} synth ${trace} --records 300000 --sync-period 10000
    --name smoke)
run(${RPPM_TRACE} info ${trace})
run(${RPPM_TRACE} profile ${trace} --engine fused)
run(${RPPM_TRACE} profile ${trace} --engine streaming
    --stream-chunk 4096 --jobs 2)

file(REMOVE ${trace})

/**
 * @file
 * rppmd — the RPPM prediction daemon (see src/server/server.hh).
 *
 * Binds a Unix-domain socket, serves rppm_client (or any RppmClient
 * user) until a client sends Shutdown or the process receives
 * SIGTERM/SIGINT, then drains outstanding requests and exits cleanly.
 *
 * Usage:
 *   rppmd --socket /tmp/rppmd.sock [--profile-dir DIR]
 *         [--max-profile-bytes N] [--max-memo-bytes N]
 *         [--workers N] [--jobs N] [--stream-chunk N]
 *         [--idle-timeout SEC] [--max-queued-cells N]
 *         [--busy-retry-ms MS] [--max-resident-bytes N]
 *         [--fault-plan PLAN]
 */

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fault.hh"
#include "server/server.hh"

namespace {

// Self-pipe shared by the signal handler and the Shutdown-message
// callback: both just wake the main thread, which owns the teardown.
int g_wakeFd = -1;

extern "C" void
onSignal(int)
{
    const char byte = 's';
    // Async-signal-safe; the result only matters if the pipe is full,
    // in which case the main thread is already waking up.
    (void)!write(g_wakeFd, &byte, 1);
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "  --socket PATH            listening Unix-domain socket (required)\n"
        "  --profile-dir DIR        serialized-profile directory\n"
        "  --max-profile-bytes N    in-memory profile budget (0=unlimited)\n"
        "  --max-memo-bytes N       prediction-memo budget (0=unlimited)\n"
        "  --workers N              prediction workers (0=all cores)\n"
        "  --jobs N                 profiling jobs (0=all cores)\n"
        "  --stream-chunk N         stream file-backed workloads in\n"
        "                           N-record chunks (0=auto by size)\n"
        "  --idle-timeout SEC       reap idle connections after SEC\n"
        "                           seconds (0=never; default 300)\n"
        "  --max-queued-cells N     shed requests that would push the\n"
        "                           queue past N cells (0=unlimited)\n"
        "  --busy-retry-ms MS       retry hint sent with Busy replies\n"
        "  --max-resident-bytes N   combined profile+memo ceiling; over\n"
        "                           it, profiles shed before memos\n"
        "                           (0=unlimited)\n"
        "  --fault-plan PLAN        arm fault injection (testing only),\n"
        "                           e.g. io.pread.short=every:100\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    // Env plan first so an explicit --fault-plan can override it.
    try {
        if (rppm::fault::installPlanFromEnv())
            std::fprintf(stderr, "rppmd: fault plan armed from env\n");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rppmd: bad RPPM_FAULT_PLAN: %s\n", e.what());
        return 2;
    }

    rppm::server::ServerOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "rppmd: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            opts.socketPath = value();
        else if (arg == "--profile-dir")
            opts.profileDirectory = value();
        else if (arg == "--max-profile-bytes")
            opts.maxProfileBytes = std::strtoull(value(), nullptr, 10);
        else if (arg == "--max-memo-bytes")
            opts.maxMemoBytes = std::strtoull(value(), nullptr, 10);
        else if (arg == "--workers")
            opts.workers =
                static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
        else if (arg == "--jobs")
            opts.jobs =
                static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
        else if (arg == "--stream-chunk")
            opts.streamChunkRecords = std::strtoull(value(), nullptr, 10);
        else if (arg == "--idle-timeout")
            opts.idleTimeoutSec =
                static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
        else if (arg == "--max-queued-cells")
            opts.maxQueuedCells = std::strtoull(value(), nullptr, 10);
        else if (arg == "--busy-retry-ms")
            opts.busyRetryMs =
                static_cast<uint32_t>(std::strtoul(value(), nullptr, 10));
        else if (arg == "--max-resident-bytes")
            opts.maxResidentBytes = std::strtoull(value(), nullptr, 10);
        else if (arg == "--fault-plan") {
            try {
                rppm::fault::installPlan(value());
            } catch (const std::exception &e) {
                std::fprintf(stderr, "rppmd: bad --fault-plan: %s\n",
                             e.what());
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "rppmd: unknown option %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (opts.socketPath.empty()) {
        usage(argv[0]);
        return 2;
    }

    int wake[2];
    if (pipe(wake) < 0) {
        std::perror("rppmd: pipe");
        return 1;
    }
    g_wakeFd = wake[1];
    opts.onShutdownRequest = [] { onSignal(0); };

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    signal(SIGPIPE, SIG_IGN);

    try {
        rppm::server::RppmServer srv(opts);
        srv.start();
        std::fprintf(stderr, "rppmd: serving on %s\n",
                     opts.socketPath.c_str());

        // Park until a signal or a Shutdown message wakes us.
        pollfd pfd = {wake[0], POLLIN, 0};
        while (poll(&pfd, 1, -1) < 0 && errno == EINTR) {
        }

        std::fprintf(stderr, "rppmd: draining...\n");
        srv.stop();
        const auto stats = srv.stats();
        std::fprintf(stderr,
                     "rppmd: served %llu requests (%llu cells, %llu "
                     "batches) over %llu connections\n",
                     static_cast<unsigned long long>(stats.requests),
                     static_cast<unsigned long long>(stats.cells),
                     static_cast<unsigned long long>(stats.batches),
                     static_cast<unsigned long long>(stats.connections));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rppmd: %s\n", e.what());
        return 1;
    }
    return 0;
}
